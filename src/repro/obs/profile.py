"""Span-folding cost-attribution profiler.

Folds the run > phase > superstep > rank_kernel span tree into
attribution tables answering "where did the modeled clock go?":

* **phases** — modeled seconds per span name with a kernel / comm /
  self split (self = coordinator-side serial work inside the span),
* **ranks** — metered kernel seconds per rank, plus the *charged*
  barrier seconds attributed to the critical (slowest) rank,
* **tiers** — charged barrier seconds per kernel tier,
* **hot paths** — top-k flattened span paths by modeled seconds,
* **skew** — phases whose wall-clock share diverges from their modeled
  share (annotation only; wall never enters the deterministic tables).

Two folds produce the same :class:`Profile`:

* :func:`fold_events` — offline, from a ``jsonl:PATH`` trace export
  (backs ``repro profile``), and
* :func:`fold_cluster` — live, from a finished cluster's tracer and
  kernel accumulators (backs ``RunResult.profile``).

Folding rules (DESIGN.md §15): tracer phases never nest, so modeled
time partitions exactly into the phase buckets plus the tracer's
unattributed remainder (charges made between phases, e.g. convergence
votes); coverage = attributed / total.  Barrier charges attribute to
the first-slowest rank (deterministic tiebreak), matching the BSP rule
that the slowest worker owns the superstep's critical path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.cluster import Cluster

__all__ = [
    "Profile",
    "fold_cluster",
    "fold_events",
    "profile_to_perfetto",
    "render_profile",
]

#: a phase whose wall share is this many times its modeled share (or
#: 1/this) is flagged as skewed — the cost model disagrees with the host
SKEW_RATIO = 3.0

#: skew is only meaningful for phases that actually matter: both shares
#: must clear this floor before a phase can be flagged
SKEW_MIN_SHARE = 0.01


@dataclass
class Profile:
    """Folded cost-attribution view of one run (modeled clock)."""

    #: total modeled seconds of the run
    total_seconds: float = 0.0
    #: modeled seconds landing in named phase/superstep buckets
    attributed_seconds: float = 0.0
    #: modeled seconds charged outside any phase (votes, bookkeeping)
    unattributed_seconds: float = 0.0
    #: per-phase rows: phase, level, count, modeled/kernel/comm/self
    phases: List[Dict[str, Any]] = field(default_factory=list)
    #: per-rank rows: rank, metered kernel seconds, charged seconds
    ranks: List[Dict[str, Any]] = field(default_factory=list)
    #: per-kernel-tier rows: tier, charged seconds, share
    tiers: List[Dict[str, Any]] = field(default_factory=list)
    #: top-k hot paths: path, modeled seconds, share of total
    hot: List[Dict[str, Any]] = field(default_factory=list)
    #: wall-vs-modeled skew rows (wall annotation only, never gated)
    skew: List[Dict[str, Any]] = field(default_factory=list)
    #: fold metadata: barrier count, truncated span count, ...
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of modeled time attributed to named buckets."""
        if self.total_seconds <= 0.0:
            return 1.0
        return self.attributed_seconds / self.total_seconds

    def to_dict(self, include_wall: bool = True) -> Dict[str, Any]:
        """JSON-ready dict; drop wall-derived fields for byte pinning."""
        phases = [dict(row) for row in self.phases]
        if not include_wall:
            for row in phases:
                row.pop("wall_seconds", None)
        out: Dict[str, Any] = {
            "total_seconds": self.total_seconds,
            "attributed_seconds": self.attributed_seconds,
            "unattributed_seconds": self.unattributed_seconds,
            "coverage": self.coverage,
            "phases": phases,
            "ranks": [dict(row) for row in self.ranks],
            "tiers": [dict(row) for row in self.tiers],
            "hot": [dict(row) for row in self.hot],
            "meta": dict(self.meta),
        }
        if include_wall:
            out["skew"] = [dict(row) for row in self.skew]
        return out


@dataclass
class _Bucket:
    """One phase/superstep attribution bucket while folding."""

    name: str
    level: str
    count: int = 0
    modeled_seconds: float = 0.0
    kernel_seconds: float = 0.0
    comm_seconds: float = 0.0
    wall_seconds: float = 0.0
    truncated: int = 0


def _share(part: float, total: float) -> float:
    return part / total if total > 0.0 else 0.0


def _finish(
    total: float,
    unattributed: float,
    buckets: List[_Bucket],
    metered_by_rank: Dict[int, float],
    charged_by_rank: Dict[int, float],
    charged_by_tier: Dict[str, float],
    *,
    top: int = 10,
    meta: Optional[Dict[str, Any]] = None,
) -> Profile:
    """Assemble a :class:`Profile` from fold accumulators."""
    attributed = sum(b.modeled_seconds for b in buckets)
    if total <= 0.0:
        total = attributed + unattributed
    prof = Profile(
        total_seconds=total,
        attributed_seconds=attributed,
        unattributed_seconds=unattributed,
        meta=dict(meta or {}),
    )
    wall_total = sum(b.wall_seconds for b in buckets)
    for b in buckets:
        self_seconds = max(
            0.0, b.modeled_seconds - b.kernel_seconds - b.comm_seconds
        )
        row: Dict[str, Any] = {
            "phase": b.name,
            "level": b.level,
            "count": b.count,
            "modeled_seconds": b.modeled_seconds,
            "kernel_seconds": b.kernel_seconds,
            "comm_seconds": b.comm_seconds,
            "self_seconds": self_seconds,
            "share": _share(b.modeled_seconds, total),
            "wall_seconds": b.wall_seconds,
        }
        if b.truncated:
            row["truncated"] = b.truncated
        prof.phases.append(row)
    prof.phases.sort(key=lambda r: (-float(r["modeled_seconds"]), str(r["phase"])))
    for rank in sorted(set(metered_by_rank) | set(charged_by_rank)):
        charged = charged_by_rank.get(rank, 0.0)
        prof.ranks.append(
            {
                "rank": rank,
                "metered_seconds": metered_by_rank.get(rank, 0.0),
                "charged_seconds": charged,
                "charged_share": _share(charged, total),
            }
        )
    for tier in sorted(charged_by_tier):
        prof.tiers.append(
            {
                "tier": tier,
                "charged_seconds": charged_by_tier[tier],
                "share": _share(charged_by_tier[tier], total),
            }
        )
    # hot paths: flattened bucket paths, kernel sub-paths, the gap
    paths: List[Tuple[str, float]] = []
    for b in buckets:
        paths.append((f"run/{b.name}", b.modeled_seconds))
        if b.kernel_seconds > 0.0:
            paths.append((f"run/{b.name}/kernel", b.kernel_seconds))
    if unattributed > 0.0:
        paths.append(("run/(unattributed)", unattributed))
    paths.sort(key=lambda p: (-p[1], p[0]))
    prof.hot = [
        {"path": path, "modeled_seconds": sec, "share": _share(sec, total)}
        for path, sec in paths[: max(0, top)]
    ]
    # wall-vs-modeled skew (annotation only)
    for b in buckets:
        wall_share = _share(b.wall_seconds, wall_total)
        modeled_share = _share(b.modeled_seconds, total)
        if wall_share < SKEW_MIN_SHARE and modeled_share < SKEW_MIN_SHARE:
            continue
        if modeled_share <= 0.0:
            ratio = float("inf") if wall_share > 0.0 else 1.0
        else:
            ratio = wall_share / modeled_share
        if ratio >= SKEW_RATIO or ratio <= 1.0 / SKEW_RATIO:
            prof.skew.append(
                {
                    "phase": b.name,
                    "wall_share": wall_share,
                    "modeled_share": modeled_share,
                    "ratio": ratio,
                }
            )
    prof.skew.sort(key=lambda r: (-float(r["ratio"]), str(r["phase"])))
    return prof


# ----------------------------------------------------------------------
# offline fold: JSONL trace events
# ----------------------------------------------------------------------
def fold_events(events: List[Dict[str, Any]], *, top: int = 10) -> Profile:
    """Fold an exported event stream (dicts, emission order) into a
    :class:`Profile`.

    Degenerate inputs are handled, not rejected: an empty stream yields
    an all-zero profile; spans left open by an aborted run are truncated
    at the last event's timestamp and counted in ``meta.truncated``.
    """
    buckets: Dict[Tuple[str, str], _Bucket] = {}
    #: stack of open phase/superstep spans: (level, name, t_begin)
    open_phase: List[Tuple[str, str, float]] = []
    run_begin: Optional[float] = None
    run_end: Optional[float] = None
    last_t = 0.0
    metered_by_rank: Dict[int, float] = {}
    charged_by_rank: Dict[int, float] = {}
    charged_by_tier: Dict[str, float] = {}
    #: kernel points of the current barrier: (t, step) -> rank -> attrs
    barrier_key: Optional[Tuple[float, Optional[int]]] = None
    barrier_points: List[Dict[str, Any]] = []
    barriers = 0
    truncated = 0

    def bucket(level: str, name: str) -> _Bucket:
        b = buckets.get((level, name))
        if b is None:
            b = buckets[(level, name)] = _Bucket(name=name, level=level)
        return b

    def flush_barrier() -> None:
        """Attribute the completed barrier's max to rank/tier/phase."""
        nonlocal barrier_key, barriers
        if not barrier_points:
            barrier_key = None
            return
        barriers += 1
        best_rank, best_secs, tier = -1, -1.0, "unknown"
        for pt in barrier_points:
            rank = int(pt.get("rank") or 0)
            attrs = pt.get("attrs") or {}
            secs = float(attrs.get("modeled_seconds") or 0.0)
            if secs > 0.0:
                metered_by_rank[rank] = (
                    metered_by_rank.get(rank, 0.0) + secs
                )
            if secs > best_secs:
                best_rank, best_secs = rank, secs
                tier = str(attrs.get("tier") or "unknown")
        charged_by_rank[best_rank] = (
            charged_by_rank.get(best_rank, 0.0) + best_secs
        )
        charged_by_tier[tier] = charged_by_tier.get(tier, 0.0) + best_secs
        if open_phase:
            level, name, _ = open_phase[-1]
            bucket(level, name).kernel_seconds += best_secs
        barrier_points.clear()
        barrier_key = None

    for ev in events:
        kind = str(ev.get("kind"))
        level = str(ev.get("level"))
        name = str(ev.get("name"))
        t = float(ev.get("t") or 0.0)
        last_t = max(last_t, t)
        if kind == "point" and level == "rank_kernel":
            key = (t, ev.get("step"))
            if barrier_key is not None and key != barrier_key:
                flush_barrier()
            barrier_key = key
            barrier_points.append(ev)
            continue
        if barrier_key is not None:
            flush_barrier()
        if kind == "begin":
            if level == "run":
                run_begin = t
            elif level in ("phase", "superstep"):
                open_phase.append((level, name, t))
        elif kind == "end":
            if level == "run":
                run_end = t
            elif level in ("phase", "superstep"):
                begin_t = t
                for i in range(len(open_phase) - 1, -1, -1):
                    if open_phase[i][:2] == (level, name):
                        begin_t = open_phase.pop(i)[2]
                        break
                b = bucket(level, name)
                b.count += 1
                b.modeled_seconds += t - begin_t
                attrs = ev.get("attrs") or {}
                comm = attrs.get("modeled_comm")
                if isinstance(comm, (int, float)):
                    b.comm_seconds += float(comm)
                wall = ev.get("wall")
                if isinstance(wall, (int, float)):
                    b.wall_seconds += float(wall)
    flush_barrier()
    # spans left open by an aborted run: truncate at the last timestamp
    for level, name, begin_t in open_phase:
        b = bucket(level, name)
        b.count += 1
        b.truncated += 1
        b.modeled_seconds += max(0.0, last_t - begin_t)
        truncated += 1
    ordered = [buckets[key] for key in buckets]
    # event timestamps are the absolute modeled clock (0 at cluster
    # creation), so the final run end IS the total — setup phases that
    # ran before the run span began are inside it, matching fold_cluster
    total = 0.0
    if run_end is not None:
        total = run_end
    elif run_begin is not None:
        total = max(0.0, last_t)
        truncated += 1
    attributed = sum(b.modeled_seconds for b in ordered)
    unattributed = max(0.0, total - attributed) if total > 0.0 else 0.0
    meta = {
        "source": "events",
        "events": len(events),
        "barriers": barriers,
        "truncated_spans": truncated,
    }
    return _finish(
        total,
        unattributed,
        ordered,
        metered_by_rank,
        charged_by_rank,
        charged_by_tier,
        top=top,
        meta=meta,
    )


# ----------------------------------------------------------------------
# live fold: finished cluster
# ----------------------------------------------------------------------
def fold_cluster(cluster: "Cluster", *, top: int = 10) -> Profile:
    """Fold a finished cluster's tracer records and kernel accumulators.

    This is the fold behind ``RunResult.profile`` — no event stream is
    needed, so it works with observers off and costs only bookkeeping.
    """
    tracer = cluster.tracer
    buckets: Dict[str, _Bucket] = {}
    order: List[str] = []
    for rec in tracer.records:
        b = buckets.get(rec.name)
        if b is None:
            level = "superstep" if rec.name == "rc_step" else "phase"
            b = buckets[rec.name] = _Bucket(name=rec.name, level=level)
            order.append(rec.name)
        b.count += 1
        b.modeled_seconds += rec.modeled_total
        b.comm_seconds += rec.modeled_comm
        b.wall_seconds += rec.wall_seconds
        if rec.info.get("aborted"):
            b.truncated += 1
    for name, secs in cluster.kernel_charged_by_phase.items():
        b = buckets.get(name)
        if b is not None:
            b.kernel_seconds += secs
    meta = {
        "source": "cluster",
        "barriers": cluster.kernel_barriers,
        "truncated_spans": sum(b.truncated for b in buckets.values()),
    }
    return _finish(
        tracer.modeled_seconds,
        tracer.unattributed_seconds,
        [buckets[name] for name in order],
        dict(cluster.kernel_metered_by_rank),
        dict(cluster.kernel_charged_by_rank),
        dict(cluster.kernel_charged_by_tier),
        top=top,
        meta=meta,
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_profile(prof: Profile, *, include_wall: bool = True) -> str:
    """Human-readable attribution tables (``repro profile`` output)."""
    # deferred: repro.bench imports the engine, which imports repro.obs
    from ..bench.reporting import format_table

    sections: List[str] = []
    sections.append(
        "cost attribution (modeled clock): "
        f"total={prof.total_seconds:.6g}s "
        f"attributed={prof.attributed_seconds:.6g}s "
        f"coverage={prof.coverage:.1%} "
        f"unattributed={prof.unattributed_seconds:.6g}s"
    )
    sections.append("")
    sections.append("phases (self/total split):")
    if prof.phases:
        cols = [
            "phase", "level", "count", "modeled_seconds",
            "kernel_seconds", "comm_seconds", "self_seconds", "share",
        ]
        if include_wall:
            cols.append("wall_seconds")
        rows = [
            {k: row.get(k, 0.0) for k in cols} for row in prof.phases
        ]
        sections.append(format_table(rows, cols))
    else:
        sections.append("(no phase spans)")
    if prof.ranks:
        sections.append("")
        sections.append("ranks (kernel attribution):")
        sections.append(
            format_table(
                prof.ranks,
                ["rank", "metered_seconds", "charged_seconds",
                 "charged_share"],
            )
        )
    if prof.tiers:
        sections.append("")
        sections.append("kernel tiers (charged barrier time):")
        sections.append(
            format_table(prof.tiers, ["tier", "charged_seconds", "share"])
        )
    if prof.hot:
        sections.append("")
        sections.append(f"hot paths (top {len(prof.hot)}):")
        sections.append(
            format_table(prof.hot, ["path", "modeled_seconds", "share"])
        )
    if include_wall:
        sections.append("")
        sections.append(
            "wall-vs-modeled skew (wall-clock annotation, "
            f"flagged at {SKEW_RATIO:g}x):"
        )
        if prof.skew:
            sections.append(
                format_table(
                    prof.skew,
                    ["phase", "wall_share", "modeled_share", "ratio"],
                )
            )
        else:
            sections.append("(no skewed phases)")
    return "\n".join(sections) + "\n"


def profile_to_perfetto(prof: Profile) -> Dict[str, Any]:
    """Aggregated Chrome trace-event view: one complete slice per phase
    bucket laid end-to-end on the main track, one metered-kernel slice
    per rank, and a coverage counter."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro profile (aggregated, modeled clock)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "phases"},
        },
    ]
    cursor = 0.0
    for row in prof.phases:
        dur = float(row["modeled_seconds"])
        events.append(
            {
                "name": str(row["phase"]),
                "cat": str(row["level"]),
                "ph": "X",
                "ts": cursor * 1e6,
                "dur": dur * 1e6,
                "pid": 0,
                "tid": 0,
                "args": {
                    "count": row["count"],
                    "kernel_seconds": row["kernel_seconds"],
                    "comm_seconds": row["comm_seconds"],
                    "self_seconds": row["self_seconds"],
                },
            }
        )
        cursor += dur
    for row in prof.ranks:
        rank = int(row["rank"])
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank + 1,
                "args": {"name": f"rank {rank} (metered)"},
            }
        )
        events.append(
            {
                "name": "kernel",
                "cat": "rank_kernel",
                "ph": "X",
                "ts": 0.0,
                "dur": float(row["metered_seconds"]) * 1e6,
                "pid": 0,
                "tid": rank + 1,
                "args": {"charged_seconds": row["charged_seconds"]},
            }
        )
    events.append(
        {
            "name": "coverage",
            "ph": "C",
            "ts": 0.0,
            "pid": 0,
            "tid": 0,
            "args": {"value": prof.coverage},
        }
    )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_profile(prof: Profile, path: str, *, include_wall: bool = True) -> None:
    """Write :meth:`Profile.to_dict` as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(prof.to_dict(include_wall=include_wall), fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
