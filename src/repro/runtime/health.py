"""Deterministic, modeled-clock health model for the simulated cluster.

The paper's anytime-anywhere contract promises a usable answer at
interrupt time; this module supplies the *detection* half of keeping
that promise under faults.  A :class:`HealthMonitor` watches the same
signals the observability layer already exports — per-rank kernel
durations at every BSP barrier, unacked-row gauges, crash events — and
runs a per-rank liveness state machine::

    healthy --(miss superstep deadline)--> suspect
    suspect --(keep missing)------------> degraded
    any     --(retired / budget burst)--> dead

All thresholds live in a typed, frozen :class:`HealthPolicy`; every
derived quantity (deadlines, backoff delays, speculation savings) is a
function of *modeled* time and the policy's own seeded RNG, never the
host clock — so two runs of the same (plan, seed, config) produce
byte-identical health decisions, traces and results.

The consumers:

* :meth:`Cluster.sync_compute` feeds barrier times into
  :meth:`HealthMonitor.observe_superstep` and uses the deadline to run
  speculative re-execution of straggling rank kernels (first completion
  wins; results are verified bitwise-identical),
* :meth:`Cluster._exchange_with_chaos` charges
  :meth:`HealthMonitor.backoff_delay` per retransmission (seeded
  exponential backoff + jitter on the LogP clock),
* the :class:`~repro.runtime.supervisor.Supervisor` climbs its recovery
  escalation ladder from crash counts and the policy's budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Sequence, Set

import numpy as np

from ..errors import ConfigurationError
from ..types import Rank

__all__ = ["HealthState", "HealthPolicy", "HealthMonitor"]


class HealthState(IntEnum):
    """Per-rank liveness state; the numeric value is the exported gauge."""

    HEALTHY = 0
    SUSPECT = 1
    DEGRADED = 2
    DEAD = 3


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds and budgets of the self-healing runtime (all typed).

    Attributes
    ----------
    deadline_factor:
        A rank misses the superstep deadline when its metered kernel
        time exceeds ``deadline_factor`` x the median rank time of that
        barrier.  Must be > 1 (at 1 the median rank itself would miss).
    suspect_after / degraded_after:
        Consecutive missed deadlines before a rank is marked
        ``suspect`` / ``degraded``.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff for packet retransmissions: the ``n``-th
        retry of a packet waits ``min(base * factor**(n-1), max)``
        modeled seconds (plus jitter) before re-entering the wire.
    backoff_jitter:
        Jitter fraction in ``[0, 1]``; the delay is scaled by
        ``1 + jitter * u`` with ``u`` drawn from the monitor's own
        seeded RNG (never the fault injector's, so fault traces do not
        shift when health is toggled).
    speculate:
        Enable speculative re-execution of straggling rank kernels.
    speculation_overhead:
        Relative cost of launching the backup copy: the backup's
        modeled duration is ``(1 + overhead)`` x the time a reference-
        speed rank would need for the same kernel.
    crash_budget:
        Per-rank crash budget for the ``escalate`` recovery ladder;
        one more crash than this degrades the run instead of recovering.
    max_dead_fraction:
        Degrade (instead of redistributing) once retiring another rank
        would push the dead fraction above this.
    graceful_degradation:
        When True, budget-exhausted runs return
        ``RunResult(degraded=True)`` with the partial closeness vector
        instead of raising.
    """

    deadline_factor: float = 2.0
    suspect_after: int = 2
    degraded_after: int = 4
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    backoff_max: float = 0.5
    backoff_jitter: float = 0.1
    speculate: bool = True
    speculation_overhead: float = 0.1
    crash_budget: int = 3
    max_dead_fraction: float = 0.5
    graceful_degradation: bool = True

    def __post_init__(self) -> None:
        if self.deadline_factor <= 1.0:
            raise ConfigurationError(
                f"deadline_factor must be > 1, got {self.deadline_factor}"
            )
        if self.suspect_after < 1:
            raise ConfigurationError("suspect_after must be >= 1")
        if self.degraded_after < self.suspect_after:
            raise ConfigurationError(
                "degraded_after must be >= suspect_after"
            )
        if self.backoff_base < 0.0:
            raise ConfigurationError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.backoff_max < self.backoff_base:
            raise ConfigurationError("backoff_max must be >= backoff_base")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError("backoff_jitter must be in [0, 1]")
        if self.speculation_overhead < 0.0:
            raise ConfigurationError("speculation_overhead must be >= 0")
        if self.crash_budget < 1:
            raise ConfigurationError("crash_budget must be >= 1")
        if not 0.0 < self.max_dead_fraction <= 1.0:
            raise ConfigurationError(
                "max_dead_fraction must be in (0, 1]"
            )


class HealthMonitor:
    """Per-rank liveness state machine plus the accounting it drives.

    Deliberately owns its *own* PCG64 stream (seeded from the fault
    plan's seed plus a fixed domain tag): backoff jitter draws must not
    consume the injector's generator, or enabling health would shift
    every subsequent loss/duplication draw and break trace pinning for
    plans that are identical apart from the health policy.
    """

    #: seed-sequence domain tag separating this stream from the injector's
    _SEED_TAG = 0x48454C54  # "HELT"

    def __init__(self, policy: HealthPolicy, nprocs: int, *, seed: int = 0) -> None:
        if nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
        self.policy = policy
        self.nprocs = nprocs
        self.states: List[HealthState] = [HealthState.HEALTHY] * nprocs
        #: ranks retired for good (redistributed away or budget-burst)
        self.dead: Set[Rank] = set()
        self._misses = [0] * nprocs
        self._rng = np.random.default_rng([seed, self._SEED_TAG])
        # --- accounting (all surfaced on RunResult / the metrics registry)
        self.missed_deadlines = 0
        self.speculations = 0
        self.speculation_saved_seconds = 0.0
        self.backoffs = 0
        self.backoff_seconds = 0.0
        self.crash_counts: Dict[Rank, int] = {}
        self.last_deadline = 0.0

    # ------------------------------------------------------------------
    # superstep deadlines
    # ------------------------------------------------------------------
    def deadline(self, times: Sequence[float]) -> float:
        """The superstep deadline: ``deadline_factor`` x median rank time."""
        if not times:
            return 0.0
        return self.policy.deadline_factor * float(np.median(times))

    def observe_superstep(
        self, times: Sequence[float], unacked: Sequence[int]
    ) -> List[Rank]:
        """Advance the state machine from one barrier's metered times.

        Returns the alive ranks that missed this superstep's deadline
        (the speculation candidates).  ``unacked`` carries the per-rank
        in-flight row gauges: a rank sitting on unacknowledged traffic
        is never reported better than ``suspect``.
        """
        deadline = self.last_deadline = self.deadline(times)
        flagged: List[Rank] = []
        for r, t in enumerate(times):
            if r in self.dead:
                self.states[r] = HealthState.DEAD
                continue
            if deadline > 0.0 and t > deadline:
                self._misses[r] += 1
                self.missed_deadlines += 1
                flagged.append(r)
            else:
                self._misses[r] = 0
            m = self._misses[r]
            if m >= self.policy.degraded_after:
                state = HealthState.DEGRADED
            elif m >= self.policy.suspect_after:
                state = HealthState.SUSPECT
            else:
                state = HealthState.HEALTHY
            if (
                state is HealthState.HEALTHY
                and r < len(unacked)
                and unacked[r] > 0
            ):
                state = HealthState.SUSPECT
            self.states[r] = state
        return flagged

    # ------------------------------------------------------------------
    # retry backoff (charged to the modeled clock by the cluster)
    # ------------------------------------------------------------------
    def backoff_delay(self, attempt: int) -> float:
        """Modeled backoff before send attempt ``attempt`` (>= 2) retries.

        Seeded exponential backoff with jitter: deterministic for a
        given monitor seed and draw order (the cluster consumes draws in
        its deterministic exchange order).
        """
        p = self.policy
        exponent = max(0, attempt - 2)
        base = min(p.backoff_base * p.backoff_factor**exponent, p.backoff_max)
        delay = base * (1.0 + p.backoff_jitter * float(self._rng.random()))
        self.backoffs += 1
        self.backoff_seconds += delay
        return delay

    # ------------------------------------------------------------------
    # crash ledger (consumed by the supervisor's escalation ladder)
    # ------------------------------------------------------------------
    def note_crash(self, rank: Rank) -> int:
        """Record one crash of ``rank``; returns its cumulative count."""
        count = self.crash_counts.get(rank, 0) + 1
        self.crash_counts[rank] = count
        return count

    def mark_dead(self, rank: Rank) -> None:
        """Retire ``rank`` permanently (redistributed away or budget burst)."""
        self.dead.add(rank)
        self.states[rank] = HealthState.DEAD

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def state_value(self, rank: Rank) -> int:
        """Numeric state for the per-rank health gauge."""
        return int(self.states[rank])

    def alive_fraction(self) -> float:
        return 1.0 - len(self.dead) / self.nprocs
