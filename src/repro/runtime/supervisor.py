"""Supervised crash recovery for fault-injected runs.

The :class:`Supervisor` sits between the RC loop and the
:class:`~repro.runtime.chaos.FaultInjector`: at the start of every RC
step it fires the crashes the plan schedules and answers each one with
the configured recovery policy, charging the policy's true LogP cost to
the modeled clock:

``warm``
    Re-ship the sub-graph, rerun the IA-phase local Dijkstra, re-wire
    subscriptions (the seed repo's original recovery).
``checkpoint``
    Every ``checkpoint_interval`` RC steps each rank ships a copy of its
    derived state (DV + local APSP) to its buddy rank ``(r+1) % P`` — an
    in-memory checkpoint.  A crashed rank restores from the buddy's copy,
    skipping the Dijkstra rerun; only boundary traffic from after the
    checkpoint must be refreshed.  Snapshots are dropped when deletions
    or re-weightings land (saved rows would stop being upper bounds) and
    fall back to ``warm`` per rank whose block changed since the save.
``redistribute``
    Degraded mode: no replacement process.  The dead rank's sub-graph
    migrates to the survivors and the computation finishes on P−1
    processors.
``escalate``
    The self-healing ladder: each rank's *first* crash gets a warm
    restart, its second a checkpoint restore (falling back to warm when
    no usable snapshot exists), and from the third on it is retired via
    redistribution.  When a rank exhausts its
    :attr:`~repro.runtime.health.HealthPolicy.crash_budget`, or retiring
    one more rank would push the dead fraction past
    ``max_dead_fraction``, the supervisor stops recovering and flags the
    run degraded — the engine then returns a partial result instead of
    raising.

Checkpointing is ordered *before* same-step crashes, so a checkpoint
scheduled at a crash step is taken from live state, not wiped state.
All decisions are deterministic functions of the plan and the cluster
state, preserving the injector's byte-identical event traces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from ..errors import ConfigurationError
from ..types import Rank
from .chaos import RECOVERY_POLICIES, FaultInjector
from .faults import (
    abandon_worker,
    crash_worker,
    recover_worker,
    recover_worker_from_snapshot,
    redistribute_worker,
)
from .health import HealthMonitor, HealthPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..core.checkpoint import ClusterStateSnapshot
    from ..graph.changes import ChangeBatch
    from .cluster import Cluster

__all__ = ["Supervisor"]


class Supervisor:
    """Applies a recovery policy to the crashes a fault injector schedules."""

    def __init__(
        self,
        cluster: "Cluster",
        injector: FaultInjector,
        *,
        recovery: str = "warm",
        checkpoint_interval: int = 8,
        monitor: Optional[HealthMonitor] = None,
    ) -> None:
        if recovery not in RECOVERY_POLICIES:
            raise ConfigurationError(
                f"unknown recovery policy {recovery!r};"
                f" choose from {RECOVERY_POLICIES}"
            )
        if checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        self.cluster = cluster
        self.injector = injector
        self.recovery = recovery
        self.checkpoint_interval = checkpoint_interval
        if monitor is None and recovery == "escalate":
            # escalation needs crash budgets and dead-fraction limits even
            # when the engine was not given an explicit HealthPolicy
            monitor = HealthMonitor(
                HealthPolicy(), cluster.nprocs, seed=injector.plan.seed
            )
        self.monitor = monitor
        self._snapshot: Optional["ClusterStateSnapshot"] = None
        #: ranks retired by redistribution / budget exhaustion
        self.dead_ranks: Set[Rank] = set()
        self.recoveries = 0
        self.recovery_modeled_seconds = 0.0
        self.checkpoint_modeled_seconds = 0.0
        #: recoveries and modeled seconds per ladder rung / policy label
        self.recoveries_by_rung: Dict[str, int] = {}
        self._rung_seconds: Dict[str, float] = {}
        #: non-empty once the run can no longer be recovered; the RC loop
        #: stops at the next step boundary and returns a partial result
        self.degraded_reason = ""

    @property
    def mttr_by_rung(self) -> Dict[str, float]:
        """Mean modeled time-to-recovery per ladder rung / policy label."""
        return {
            rung: self._rung_seconds[rung] / count
            for rung, count in sorted(self.recoveries_by_rung.items())
            if count
        }

    # ------------------------------------------------------------------
    @property
    def last_crash_step(self) -> int:
        """Latest scheduled crash step (the RC loop must live this long)."""
        return self.injector.last_crash_step

    def before_step(self, step: int) -> None:
        """RC-step preamble: periodic checkpoint, then scheduled crashes."""
        self.injector.begin_step(step)
        if (
            self.recovery in ("checkpoint", "escalate")
            and step % self.checkpoint_interval == 0
        ):
            self._take_checkpoint(step)
        for rank in self.injector.crashes_at(step):
            self._handle_crash(step, rank)

    def note_batch(self, batch: "ChangeBatch") -> None:
        """Observe an applied change batch.

        Deletions and re-weightings can *increase* true distances, so DV
        rows saved before such a batch are no longer guaranteed upper
        bounds; the snapshot must be dropped.  Additions only shorten
        distances and append columns, which restore handles by padding.
        """
        if batch and (
            batch.edge_deletions
            or batch.edge_reweights
            or batch.vertex_deletions
        ):
            self._snapshot = None

    # ------------------------------------------------------------------
    def _take_checkpoint(self, step: int) -> None:
        from ..core.checkpoint import snapshot_cluster_state

        cluster = self.cluster
        rec = cluster.tracer.begin("checkpoint", step)
        snap = snapshot_cluster_state(cluster, step)
        if cluster.nprocs > 1:
            cluster.charge_comm_words(
                [
                    (r, (r + 1) % cluster.nprocs, snap.words(r))
                    for r in range(cluster.nprocs)
                ]
            )
        cluster.tracer.end()
        self.checkpoint_modeled_seconds += rec.modeled_total
        self._snapshot = snap

    def _snapshot_usable_for(self, rank: Rank) -> bool:
        snap = self._snapshot
        cluster = self.cluster
        if snap is None or cluster.partition is None:
            return False
        if not snap.compatible_with(cluster):
            return False
        return snap.owned.get(rank) == tuple(cluster.partition.block(rank))

    def _handle_crash(self, step: int, rank: Rank) -> None:
        cluster = self.cluster
        if rank in self.dead_ranks:
            # the rank was already retired; the scheduled crash still
            # happens (and is recorded) but there is nothing to recover
            self.injector.record_crash(step, rank)
            return
        if self.recovery == "escalate":
            self._handle_crash_escalate(step, rank)
            return
        self.injector.record_crash(step, rank)
        rec = cluster.tracer.begin("fault_recovery", step)
        crash_worker(cluster, rank)
        if self.recovery == "redistribute":
            redistribute_worker(cluster, rank, exclude=self.dead_ranks)
            self.dead_ranks.add(rank)
            policy = "redistribute"
        elif self.recovery == "checkpoint" and self._snapshot_usable_for(rank):
            recover_worker_from_snapshot(cluster, rank, self._snapshot)
            policy = "checkpoint"
        elif self.recovery == "checkpoint":
            # no usable snapshot (none taken yet, invalidated by deletions,
            # or the block changed since the save): warm restart instead
            recover_worker(cluster, rank)
            policy = "warm-fallback"
        else:
            recover_worker(cluster, rank)
            policy = "warm"
        cluster.tracer.end()
        self._finish_recovery(step, rank, policy, rec.modeled_total)

    def _finish_recovery(
        self, step: int, rank: Rank, policy: str, seconds: float
    ) -> None:
        self.recoveries += 1
        self.recovery_modeled_seconds += seconds
        self.recoveries_by_rung[policy] = (
            self.recoveries_by_rung.get(policy, 0) + 1
        )
        self._rung_seconds[policy] = (
            self._rung_seconds.get(policy, 0.0) + seconds
        )
        self.injector.record_recovery(step, rank, policy)

    def _handle_crash_escalate(self, step: int, rank: Rank) -> None:
        """Climb the ladder warm -> checkpoint -> redistribute per rank,
        degrading gracefully once health budgets are exhausted."""
        cluster = self.cluster
        monitor = self.monitor
        assert monitor is not None
        self.injector.record_crash(step, rank)
        count = monitor.note_crash(rank)
        policy = monitor.policy
        if count > policy.crash_budget:
            abandon_worker(cluster, rank)
            self.dead_ranks.add(rank)
            monitor.mark_dead(rank)
            self._degrade(step, rank, "crash-budget")
            return
        if count >= 3:
            # third strike: retiring the rank — unless that would leave
            # too few survivors, in which case the run degrades instead
            if (len(self.dead_ranks) + 1) / cluster.nprocs > (
                policy.max_dead_fraction
            ):
                abandon_worker(cluster, rank)
                self.dead_ranks.add(rank)
                monitor.mark_dead(rank)
                self._degrade(step, rank, "dead-fraction")
                return
        rec = cluster.tracer.begin("fault_recovery", step)
        crash_worker(cluster, rank)
        if count == 1:
            recover_worker(cluster, rank)
            rung = "warm"
        elif count == 2 and self._snapshot_usable_for(rank):
            recover_worker_from_snapshot(cluster, rank, self._snapshot)
            rung = "checkpoint"
        elif count == 2:
            recover_worker(cluster, rank)
            rung = "warm-fallback"
        else:
            redistribute_worker(cluster, rank, exclude=self.dead_ranks)
            self.dead_ranks.add(rank)
            monitor.mark_dead(rank)
            rung = "redistribute"
        rec.info["rung"] = float(
            {"warm": 1, "checkpoint": 2, "warm-fallback": 2,
             "redistribute": 3}[rung]
        )
        cluster.tracer.end()
        self._finish_recovery(step, rank, rung, rec.modeled_total)

    def _degrade(self, step: int, rank: Rank, reason: str) -> None:
        """Stop recovering: flag the run for graceful degradation."""
        if not self.degraded_reason:
            self.degraded_reason = reason
        self.injector.record_degraded(step, reason, rank)
