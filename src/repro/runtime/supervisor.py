"""Supervised crash recovery for fault-injected runs.

The :class:`Supervisor` sits between the RC loop and the
:class:`~repro.runtime.chaos.FaultInjector`: at the start of every RC
step it fires the crashes the plan schedules and answers each one with
the configured recovery policy, charging the policy's true LogP cost to
the modeled clock:

``warm``
    Re-ship the sub-graph, rerun the IA-phase local Dijkstra, re-wire
    subscriptions (the seed repo's original recovery).
``checkpoint``
    Every ``checkpoint_interval`` RC steps each rank ships a copy of its
    derived state (DV + local APSP) to its buddy rank ``(r+1) % P`` — an
    in-memory checkpoint.  A crashed rank restores from the buddy's copy,
    skipping the Dijkstra rerun; only boundary traffic from after the
    checkpoint must be refreshed.  Snapshots are dropped when deletions
    or re-weightings land (saved rows would stop being upper bounds) and
    fall back to ``warm`` per rank whose block changed since the save.
``redistribute``
    Degraded mode: no replacement process.  The dead rank's sub-graph
    migrates to the survivors and the computation finishes on P−1
    processors.

Checkpointing is ordered *before* same-step crashes, so a checkpoint
scheduled at a crash step is taken from live state, not wiped state.
All decisions are deterministic functions of the plan and the cluster
state, preserving the injector's byte-identical event traces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from ..errors import ConfigurationError
from ..types import Rank
from .chaos import RECOVERY_POLICIES, FaultInjector
from .faults import (
    crash_worker,
    recover_worker,
    recover_worker_from_snapshot,
    redistribute_worker,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.checkpoint import ClusterStateSnapshot
    from ..graph.changes import ChangeBatch
    from .cluster import Cluster

__all__ = ["Supervisor"]


class Supervisor:
    """Applies a recovery policy to the crashes a fault injector schedules."""

    def __init__(
        self,
        cluster: "Cluster",
        injector: FaultInjector,
        *,
        recovery: str = "warm",
        checkpoint_interval: int = 8,
    ) -> None:
        if recovery not in RECOVERY_POLICIES:
            raise ConfigurationError(
                f"unknown recovery policy {recovery!r};"
                f" choose from {RECOVERY_POLICIES}"
            )
        if checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        self.cluster = cluster
        self.injector = injector
        self.recovery = recovery
        self.checkpoint_interval = checkpoint_interval
        self._snapshot: Optional["ClusterStateSnapshot"] = None
        #: ranks retired by the redistribute policy (own no vertices)
        self.dead_ranks: Set[Rank] = set()
        self.recoveries = 0
        self.recovery_modeled_seconds = 0.0
        self.checkpoint_modeled_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def last_crash_step(self) -> int:
        """Latest scheduled crash step (the RC loop must live this long)."""
        return self.injector.last_crash_step

    def before_step(self, step: int) -> None:
        """RC-step preamble: periodic checkpoint, then scheduled crashes."""
        self.injector.begin_step(step)
        if (
            self.recovery == "checkpoint"
            and step % self.checkpoint_interval == 0
        ):
            self._take_checkpoint(step)
        for rank in self.injector.crashes_at(step):
            self._handle_crash(step, rank)

    def note_batch(self, batch: "ChangeBatch") -> None:
        """Observe an applied change batch.

        Deletions and re-weightings can *increase* true distances, so DV
        rows saved before such a batch are no longer guaranteed upper
        bounds; the snapshot must be dropped.  Additions only shorten
        distances and append columns, which restore handles by padding.
        """
        if batch and (
            batch.edge_deletions
            or batch.edge_reweights
            or batch.vertex_deletions
        ):
            self._snapshot = None

    # ------------------------------------------------------------------
    def _take_checkpoint(self, step: int) -> None:
        from ..core.checkpoint import snapshot_cluster_state

        cluster = self.cluster
        rec = cluster.tracer.begin("checkpoint", step)
        snap = snapshot_cluster_state(cluster, step)
        if cluster.nprocs > 1:
            cluster.charge_comm_words(
                [
                    (r, (r + 1) % cluster.nprocs, snap.words(r))
                    for r in range(cluster.nprocs)
                ]
            )
        cluster.tracer.end()
        self.checkpoint_modeled_seconds += rec.modeled_total
        self._snapshot = snap

    def _snapshot_usable_for(self, rank: Rank) -> bool:
        snap = self._snapshot
        cluster = self.cluster
        if snap is None or cluster.partition is None:
            return False
        if not snap.compatible_with(cluster):
            return False
        return snap.owned.get(rank) == tuple(cluster.partition.block(rank))

    def _handle_crash(self, step: int, rank: Rank) -> None:
        cluster = self.cluster
        self.injector.record_crash(step, rank)
        rec = cluster.tracer.begin("fault_recovery", step)
        crash_worker(cluster, rank)
        if self.recovery == "redistribute":
            redistribute_worker(cluster, rank, exclude=self.dead_ranks)
            self.dead_ranks.add(rank)
            policy = "redistribute"
        elif self.recovery == "checkpoint" and self._snapshot_usable_for(rank):
            recover_worker_from_snapshot(cluster, rank, self._snapshot)
            policy = "checkpoint"
        elif self.recovery == "checkpoint":
            # no usable snapshot (none taken yet, invalidated by deletions,
            # or the block changed since the save): warm restart instead
            recover_worker(cluster, rank)
            policy = "warm-fallback"
        else:
            recover_worker(cluster, rank)
            policy = "warm"
        cluster.tracer.end()
        self.recoveries += 1
        self.recovery_modeled_seconds += rec.modeled_total
        self.injector.record_recovery(step, rank, policy)
