"""Pure compute kernels shared by the serial and process backends.

The heavy per-rank work of the two parallelizable phases — the IA-phase
local Dijkstra and the RC-step superstep (cut-edge relaxation + local
min-plus propagation) — is factored here into functions that touch only

* a picklable *task* describing the step (built by the worker in the
  coordinating process), and
* the worker's two large matrices ``dv`` / ``local_apsp``, passed in
  explicitly so a subprocess can supply shared-memory views instead.

Everything stateful (change tracking, subscriber queues, modeled LogP
charges, counters) stays in :class:`~repro.runtime.worker.Worker`, which
splits each phase into *prepare* (build the task), *kernel* (this
module, runnable anywhere), and *apply* (charges + bookkeeping).  The
serial backend runs all three in-process; the process backend runs the
kernel on a pool child against shared memory.  Both execute the exact
same NumPy/SciPy statements in the exact same order, which is what makes
the backends bitwise-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Set, Tuple

import numpy as np
import scipy.sparse.csgraph as csgraph
from numpy.typing import NDArray

from ..types import BoolArray, FloatArray

#: DV column indices as produced by ``np.flatnonzero`` / index building.
IndexArray = NDArray[np.intp]

#: Cut-edge relaxation inputs: per fresh external row, the received DV
#: row and the ``(local row, edge weight)`` pairs relaxed against it.
RelaxItems = List[Tuple[FloatArray, List[Tuple[int, float]]]]

__all__ = [
    "IATask",
    "IndexArray",
    "RelaxItems",
    "SuperstepTask",
    "SuperstepResult",
    "ia_kernel",
    "relax_cut_kernel",
    "minplus_fold",
    "run_superstep",
]

#: Cap on the float64 element count of the batched min-plus broadcast
#: temporary (``n_rows x block x n_cols``); 2**21 elements = 16 MB.
_MINPLUS_BLOCK_ELEMS = 1 << 21

#: Max sources folded per ``np.minimum`` call in the batched kernel.
_MINPLUS_MAX_BLOCK = 64


@dataclass
class IATask:
    """One rank's IA-phase work: local APSP + fold into owned DV columns."""

    #: local adjacency in CSR form (scipy matrix; picklable)
    matrix: Any
    #: global DV column of each owned vertex, in row order
    cols: IndexArray
    #: number of owned vertices (== rows of ``local_apsp``)
    n: int
    #: directed stored-edge count of ``matrix`` (for the modeled charge)
    nnz: int


@dataclass
class SuperstepTask:
    """One rank's RC-superstep work (relaxation inputs + fold extent)."""

    n: int
    n_cols: int
    #: per fresh external row, in relaxation order: the received DV row
    #: and the ``(local row, cut-edge weight)`` pairs relaxed against it
    relax_items: RelaxItems
    #: rows already marked changed before this superstep, sorted
    changed_rows: List[int]
    #: private copy of the dirty-column mask (the kernel extends it with
    #: the columns the relaxation improves)
    dirty_cols: BoolArray
    full_repropagate: bool

    @property
    def n_relaxations(self) -> int:
        return sum(len(pairs) for _row, pairs in self.relax_items)


@dataclass
class SuperstepResult:
    """What the coordinating process needs back from a superstep kernel."""

    #: local rows the cut-edge relaxation improved, sorted
    relax_improved: List[int] = field(default_factory=list)
    #: True iff the propagation fold ran (and its compute must be charged)
    prop_charged: bool = False
    #: local rows the propagation fold improved, sorted
    prop_improved: List[int] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return bool(self.relax_improved) or bool(self.prop_improved)


def ia_kernel(task: IATask, dv: FloatArray, apsp: FloatArray) -> None:
    """Local APSP (the paper's multithreaded Dijkstra) + DV column fold.

    Writes into the caller-allocated ``apsp`` (shape ``(n, n)``) and
    folds it into the owned columns of ``dv`` in place.
    """
    apsp[:, :] = csgraph.dijkstra(task.matrix, directed=False)
    cols = task.cols
    # fancy indexing yields a copy, so an out= write would be lost;
    # assign the minimum back explicitly
    dv[:, cols] = np.minimum(dv[:, cols], apsp)


def relax_cut_kernel(
    dv: FloatArray,
    dirty_cols: BoolArray,
    items: RelaxItems,
) -> List[int]:
    """Cut-edge relaxation: ``d(u,t) <- min(d(u,t), w(u,x) + d(x,t))``.

    Mutates ``dv`` and ``dirty_cols`` in place; returns the sorted local
    rows that improved.  Item order is fixed by the caller (sorted
    external vertex, then cut-edge registration order), so repeated runs
    relax in the same sequence.
    """
    improved: Set[int] = set()
    for row_x, pairs in items:
        for r, w in pairs:
            cand = row_x + w
            mask = cand < dv[r]
            if mask.any():
                dv[r][mask] = cand[mask]
                dirty_cols |= mask
                improved.add(r)
    return sorted(improved)


def minplus_fold(
    apsp: FloatArray, dv: FloatArray, rows: List[int], cols: IndexArray
) -> List[int]:
    """Blocked batched min-plus fold; returns the sorted rows improved.

    ``d(x,t) <- min_k apsp(x,k) + d(k,t)`` over changed sources ``k``
    (``rows``) and dirty targets ``t`` (``cols``), written back into
    ``dv`` in place.  Folds 32-64 sources per ``np.minimum`` call, with
    the ``(n x block x c)`` broadcast temporary capped at a fixed element
    budget.  Bitwise-identical to a per-source fold: float64 min is
    exact and order-independent, and distances never produce NaNs.
    """
    n = apsp.shape[0]
    a = apsp[:, rows]                  # (n, k)
    b = dv[np.asarray(rows)][:, cols]  # (k, c)
    c = len(cols)
    cand = np.full((n, c), np.inf, dtype=np.float64)
    block = max(
        1, min(_MINPLUS_MAX_BLOCK, _MINPLUS_BLOCK_ELEMS // max(1, n * c))
    )
    k = len(rows)
    for j0 in range(0, k, block):
        ab = a[:, j0:j0 + block]                    # (n, bk)
        keep = np.isfinite(ab).any(axis=0)
        if not keep.any():
            continue
        if not keep.all():
            ab = ab[:, keep]
        bb = b[j0:j0 + block][keep]                 # (bk, c)
        np.minimum(
            cand,
            np.min(ab[:, :, None] + bb[None, :, :], axis=1),
            out=cand,
        )
    sub = dv[:, cols]
    improved = cand < sub
    if not improved.any():
        return []
    sub[improved] = cand[improved]
    dv[:, cols] = sub
    return [int(r) for r in np.flatnonzero(improved.any(axis=1))]


def run_superstep(
    task: SuperstepTask, dv: FloatArray, apsp: FloatArray
) -> SuperstepResult:
    """One rank's full RC superstep: relaxation then propagation.

    Mirrors the serial ``relax_cut_edges`` + ``propagate_local`` pair
    decision-for-decision; the only difference is that change-tracking
    state arrives snapshotted inside ``task`` and the outcomes travel
    back in a :class:`SuperstepResult` instead of mutating the worker.
    """
    dirty = task.dirty_cols
    relax_improved = relax_cut_kernel(dv, dirty, task.relax_items)
    n = task.n
    if n == 0:
        return SuperstepResult(relax_improved=relax_improved)
    if task.full_repropagate:
        rows = list(range(n))
        col_mask = np.ones(task.n_cols, dtype=bool)
    else:
        rows = sorted(set(task.changed_rows) | set(relax_improved))
        col_mask = dirty
    if not rows or not col_mask.any():
        return SuperstepResult(relax_improved=relax_improved)
    cols = np.flatnonzero(col_mask)
    prop_improved = minplus_fold(apsp, dv, rows, cols)
    return SuperstepResult(
        relax_improved=relax_improved,
        prop_charged=True,
        prop_improved=prop_improved,
    )
