"""Deterministic fault injection for the simulated cluster.

The paper's §VI names "fault tolerance in the cloud" as the key open
problem for anytime-anywhere methods.  This module provides the *failure
surface*: a seeded, declarative :class:`FaultPlan` that schedules

* **worker crashes** at given RC steps (all derived state destroyed),
* **message loss** — a boundary-DV packet traverses the wire (and is
  charged) but never arrives,
* **message duplication** — a packet is delivered twice (charged twice;
  the receiver deduplicates by sequence number),
* **transient send failures** — the packet never leaves the sender (no
  wire charge) and is retried at the next exchange,
* **ack loss** — a delivery acknowledgement is dropped, forcing a
  harmless duplicate retransmission,
* **stragglers** — per-rank compute slowdown factors.

Everything is driven by one ``numpy`` PCG64 generator seeded from
``plan.seed`` and consumed in the cluster's deterministic message order,
so the same plan + seed reproduces a byte-identical fault event trace
(:meth:`FaultInjector.trace_lines`) across runs — the property the
regression tests assert.

Recovery *policies* live in :mod:`repro.runtime.supervisor`; this module
only decides *what goes wrong, and when*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import Rank

__all__ = [
    "RECOVERY_POLICIES",
    "FaultEvent",
    "FaultStats",
    "FaultPlan",
    "FaultInjector",
]

#: The recovery policies the supervisor implements (kept here so that
#: configuration validation does not need to import the supervisor).
#: ``escalate`` climbs the ladder warm -> checkpoint -> redistribute
#: per rank and degrades gracefully once health budgets are exhausted.
RECOVERY_POLICIES = ("warm", "checkpoint", "redistribute", "escalate")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or the recovery that answered it).

    ``kind`` is one of ``crash``, ``recovery``, ``loss``, ``duplicate``,
    ``send_failure``, ``ack_loss``, ``retry``, ``straggler``,
    ``backoff`` (a modeled retransmission delay charged by the health
    monitor) or ``degraded`` (the run gave up recovering and returned a
    partial result).  Unused coordinate fields stay at ``-1`` so the
    serialized form is stable.
    """

    step: int
    kind: str
    rank: Rank = -1
    src: Rank = -1
    dst: Rank = -1
    seq: int = -1
    detail: str = ""

    def line(self) -> str:
        """A canonical one-line serialization (byte-stable across runs)."""
        return (
            f"step={self.step} kind={self.kind} rank={self.rank}"
            f" src={self.src} dst={self.dst} seq={self.seq}"
            f" detail={self.detail}"
        )


@dataclass
class FaultStats:
    """Aggregate fault/recovery accounting for one run."""

    crashes: int = 0
    recoveries: int = 0
    messages_lost: int = 0
    messages_duplicated: int = 0
    send_failures: int = 0
    acks_lost: int = 0
    retries: int = 0
    #: modeled backoff delays charged before retransmissions (health)
    backoffs: int = 0

    @property
    def faults_injected(self) -> int:
        """Total number of injected fault events (recoveries excluded)."""
        return (
            self.crashes
            + self.messages_lost
            + self.messages_duplicated
            + self.send_failures
            + self.acks_lost
        )


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seeded schedule of faults for one run.

    Attributes
    ----------
    seed:
        Seed for the per-message random draws (loss/duplication/failure).
    crashes:
        ``(rc_step, rank)`` pairs; each crashes ``rank`` at the *start* of
        the given RC step (before the boundary exchange).
    loss_prob / dup_prob / send_failure_prob:
        Independent per-packet probabilities.  Loss also applies to
        delivery acknowledgements.
    stragglers:
        ``rank -> slowdown factor`` (>= 1); the rank's modeled compute is
        multiplied by the factor for the duration of the run.
    max_retries:
        Retry budget per packet; exceeding it raises
        :class:`~repro.errors.WorkerError` (a partitioned network, not a
        transient fault).
    """

    seed: int = 0
    crashes: Tuple[Tuple[int, Rank], ...] = ()
    loss_prob: float = 0.0
    dup_prob: float = 0.0
    send_failure_prob: float = 0.0
    stragglers: Tuple[Tuple[Rank, float], ...] = ()
    max_retries: int = 25

    def __post_init__(self) -> None:
        # accept dicts / lists for ergonomics; normalize to sorted tuples
        # so equal plans compare (and serialize) identically
        crashes = self.crashes
        if isinstance(crashes, Mapping):
            crashes = tuple(
                (int(s), int(r)) for s, r in sorted(crashes.items())
            )
        else:
            crashes = tuple(
                (int(s), int(r)) for s, r in sorted(tuple(c) for c in crashes)
            )
        object.__setattr__(self, "crashes", crashes)
        stragglers = self.stragglers
        if isinstance(stragglers, Mapping):
            stragglers = stragglers.items()
        stragglers = tuple(
            (int(r), float(f)) for r, f in sorted(tuple(s) for s in stragglers)
        )
        object.__setattr__(self, "stragglers", stragglers)
        for name in ("loss_prob", "dup_prob", "send_failure_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {p}")
        for step, rank in self.crashes:
            if step < 0:
                raise ConfigurationError(f"crash step {step} must be >= 0")
            if rank < 0:
                raise ConfigurationError(f"crash rank {rank} must be >= 0")
        for rank, factor in self.stragglers:
            if rank < 0:
                raise ConfigurationError(f"straggler rank {rank} must be >= 0")
            if factor < 1.0:
                raise ConfigurationError(
                    f"straggler factor must be >= 1, got {factor}"
                )
        if self.max_retries < 1:
            raise ConfigurationError("max_retries must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def single_crash(cls, step: int, rank: Rank, **kwargs: Any) -> "FaultPlan":
        """A plan with exactly one crash (the common test/bench case)."""
        return cls(crashes=((step, rank),), **kwargs)

    @property
    def last_crash_step(self) -> int:
        """The latest scheduled crash step, or -1 with no crashes."""
        return max((s for s, _r in self.crashes), default=-1)

    @property
    def has_message_faults(self) -> bool:
        return (
            self.loss_prob > 0.0
            or self.dup_prob > 0.0
            or self.send_failure_prob > 0.0
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` against one run, deterministically.

    The cluster consults :meth:`send_outcome` / :meth:`ack_lost` for every
    packet in its (deterministic) exchange order; the supervisor consults
    :meth:`crashes_at` at the start of every RC step.  All consulted
    randomness comes from one seeded generator, so the recorded
    :attr:`events` trace is byte-identical across identical runs.
    """

    def __init__(self, plan: FaultPlan, nprocs: int) -> None:
        for _step, rank in plan.crashes:
            if rank >= nprocs:
                raise ConfigurationError(
                    f"crash rank {rank} out of range for {nprocs} workers"
                )
        for rank, _factor in plan.stragglers:
            if rank >= nprocs:
                raise ConfigurationError(
                    f"straggler rank {rank} out of range for {nprocs} workers"
                )
        self.plan = plan
        self.nprocs = nprocs
        self._rng = np.random.default_rng(plan.seed)
        self.step = 0
        self.events: List[FaultEvent] = []
        self.stats = FaultStats()
        self._crashes_by_step: Dict[int, List[Rank]] = {}
        for step, rank in plan.crashes:
            self._crashes_by_step.setdefault(step, []).append(rank)
        for rank, factor in plan.stragglers:
            self.events.append(
                FaultEvent(
                    step=-1, kind="straggler", rank=rank, detail=f"x{factor}"
                )
            )

    # ------------------------------------------------------------------
    # step / crash schedule
    # ------------------------------------------------------------------
    def begin_step(self, step: int) -> None:
        """Inform the injector which RC step is starting (event stamping)."""
        self.step = step

    def crashes_at(self, step: int) -> List[Rank]:
        """Ranks scheduled to crash at the start of ``step``."""
        return list(self._crashes_by_step.get(step, ()))

    @property
    def last_crash_step(self) -> int:
        return self.plan.last_crash_step

    def record_crash(self, step: int, rank: Rank) -> None:
        self.stats.crashes += 1
        self.events.append(FaultEvent(step=step, kind="crash", rank=rank))

    def record_recovery(self, step: int, rank: Rank, policy: str) -> None:
        self.stats.recoveries += 1
        self.events.append(
            FaultEvent(step=step, kind="recovery", rank=rank, detail=policy)
        )

    def record_retry(self, src: Rank, dst: Rank, seq: int) -> None:
        self.stats.retries += 1
        self.events.append(
            FaultEvent(step=self.step, kind="retry", src=src, dst=dst, seq=seq)
        )

    def record_backoff(
        self, src: Rank, dst: Rank, seq: int, delay: float
    ) -> None:
        """A modeled backoff delay charged before a retransmission.

        ``delay`` is formatted with a fixed precision so the event trace
        stays byte-stable across platforms.
        """
        self.stats.backoffs += 1
        self.events.append(
            FaultEvent(
                step=self.step, kind="backoff",
                src=src, dst=dst, seq=seq, detail=f"{delay:.9e}",
            )
        )

    def record_degraded(self, step: int, reason: str, rank: Rank = -1) -> None:
        """The run stopped recovering and returned a partial result."""
        self.events.append(
            FaultEvent(step=step, kind="degraded", rank=rank, detail=reason)
        )

    # ------------------------------------------------------------------
    # per-packet draws (consumed in the cluster's deterministic order)
    # ------------------------------------------------------------------
    def send_outcome(self, src: Rank, dst: Rank, seq: int) -> str:
        """Fate of one outgoing packet: ``ok`` | ``lost`` | ``duplicated``
        | ``send_failure``."""
        plan = self.plan
        if not plan.has_message_faults:
            return "ok"
        if (
            plan.send_failure_prob > 0.0
            and self._rng.random() < plan.send_failure_prob
        ):
            self.stats.send_failures += 1
            self.events.append(
                FaultEvent(
                    step=self.step, kind="send_failure",
                    src=src, dst=dst, seq=seq,
                )
            )
            return "send_failure"
        if plan.loss_prob > 0.0 and self._rng.random() < plan.loss_prob:
            self.stats.messages_lost += 1
            self.events.append(
                FaultEvent(
                    step=self.step, kind="loss", src=src, dst=dst, seq=seq
                )
            )
            return "lost"
        if plan.dup_prob > 0.0 and self._rng.random() < plan.dup_prob:
            self.stats.messages_duplicated += 1
            self.events.append(
                FaultEvent(
                    step=self.step, kind="duplicate", src=src, dst=dst, seq=seq
                )
            )
            return "duplicated"
        return "ok"

    def ack_lost(self, src: Rank, dst: Rank, seq: int) -> bool:
        """Whether the ack for packet ``(src, dst, seq)`` is dropped.

        ``src``/``dst`` name the *data* direction; the ack travels
        ``dst -> src``.  Losing an ack only causes a duplicate
        retransmission (deduplicated by the receiver), never data loss.
        """
        plan = self.plan
        if plan.loss_prob <= 0.0:
            return False
        if self._rng.random() < plan.loss_prob:
            self.stats.acks_lost += 1
            self.events.append(
                FaultEvent(
                    step=self.step, kind="ack_loss", src=src, dst=dst, seq=seq
                )
            )
            return True
        return False

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def trace_lines(self) -> List[str]:
        """The canonical fault-event trace (byte-stable across runs)."""
        return [e.line() for e in self.events]

    def trace_bytes(self) -> bytes:
        return "\n".join(self.trace_lines()).encode("utf-8")
