"""Array allocation plumbing for the execution backends.

Workers route every (re)allocation of their two large matrices — ``dv``
and ``local_apsp`` — through an :class:`ArrayAllocator`.  The default
allocator hands out ordinary NumPy arrays, which keeps the serial
backend byte-for-byte what it always was.  The process backend installs
a :class:`SharedMemoryAllocator` instead, so both matrices live in
``multiprocessing.shared_memory`` segments that kernel subprocesses can
attach by name and mutate in place — BSP barriers then move only row
indices and :class:`~repro.runtime.message.DeltaRows`, never matrices.

Lifecycle rules:

* The allocator owns the segments.  ``adopt`` is called by the worker's
  ``dv`` / ``local_apsp`` property setters: an array the allocator
  already owns is kept as-is, anything else (``np.hstack`` results,
  checkpoint restores, crash wipes) is copied into a fresh segment.
  The replaced segment is unlinked immediately.
* Unlinking only removes the name; existing NumPy views (e.g. rows a
  recovery path saved before a repartition) stay readable until they
  are garbage collected, exactly like plain arrays.
* Segments are unlinked when the allocator is garbage collected or
  :meth:`SharedMemoryAllocator.release_all` is called, so abandoned
  clusters do not leak ``/dev/shm`` space for the life of the process.
"""

from __future__ import annotations

import sys
import weakref
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, Optional, Tuple

import numpy as np

from ..types import FloatArray

__all__ = [
    "ArrayAllocator",
    "SharedMemoryAllocator",
    "ShmDescriptor",
    "attach_shm_array",
    "detach_shm",
]

#: (segment name, array shape) — everything a subprocess needs to attach.
ShmDescriptor = Tuple[str, Tuple[int, ...]]


class ArrayAllocator:
    """Default allocator: plain NumPy arrays, no shared residency."""

    #: True when arrays handed out are shared-memory resident
    shared = False

    def empty(self, shape: Tuple[int, ...]) -> FloatArray:
        """An uninitialized float64 array the allocator owns."""
        return np.empty(shape, dtype=np.float64)

    def adopt(
        self, new: FloatArray, old: Optional[FloatArray]
    ) -> FloatArray:
        """Take ownership of ``new``, replacing ``old``.

        The plain allocator is a pass-through; the shared-memory
        allocator copies foreign arrays into fresh segments.
        """
        return new

    def descriptor(self, arr: FloatArray) -> ShmDescriptor:
        """The attachment descriptor of an owned array (shm only)."""
        raise TypeError("plain numpy arrays have no shm descriptor")

    def release_all(self) -> None:
        """Free every owned segment (no-op for plain arrays)."""


class SharedMemoryAllocator(ArrayAllocator):
    """Allocator backing arrays with ``multiprocessing.shared_memory``."""

    shared = True

    def __init__(self) -> None:
        #: id(array) -> (segment, the exact array object handed out);
        #: the strong array reference keeps the id stable while owned
        self._blocks: Dict[int, Tuple[SharedMemory, FloatArray]] = {}
        # unlink leftover segments when the allocator itself is collected
        self._finalizer = weakref.finalize(
            self, _unlink_blocks, self._blocks
        )

    def empty(self, shape: Tuple[int, ...]) -> FloatArray:
        nbytes = int(np.prod(shape, dtype=np.int64)) * 8
        shm = SharedMemory(create=True, size=max(1, nbytes))
        arr: FloatArray = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        self._blocks[id(arr)] = (shm, arr)
        return arr

    def owns(self, arr: FloatArray) -> bool:
        entry = self._blocks.get(id(arr))
        return entry is not None and entry[1] is arr

    def adopt(
        self, new: FloatArray, old: Optional[FloatArray]
    ) -> FloatArray:
        if self.owns(new):
            if old is not None and new is not old:
                self._release(old)
            return new
        out = self.empty(new.shape)
        out[...] = new
        if old is not None:
            self._release(old)
        return out

    def descriptor(self, arr: FloatArray) -> ShmDescriptor:
        entry = self._blocks.get(id(arr))
        if entry is None or entry[1] is not arr:
            raise TypeError(
                "array is not resident in this allocator's shared memory"
            )
        return entry[0].name, tuple(arr.shape)

    def _release(self, arr: FloatArray) -> None:
        entry = self._blocks.pop(id(arr), None)
        if entry is None or entry[1] is not arr:
            return  # not ours (e.g. a plain temporary): nothing to free
        _unlink(entry[0])

    def release_all(self) -> None:
        _unlink_blocks(self._blocks)


def _unlink(shm: SharedMemory) -> None:
    """Unlink a segment; live NumPy views keep their mapping valid."""
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked (double release)
        pass
    try:
        shm.close()
    except BufferError:
        # a NumPy view still references the buffer; the mapping is
        # reclaimed when the view is garbage collected
        pass


def _unlink_blocks(
    blocks: Dict[int, Tuple[SharedMemory, FloatArray]]
) -> None:
    for shm, _arr in list(blocks.values()):
        _unlink(shm)
    blocks.clear()


def attach_shm_array(desc: ShmDescriptor) -> Tuple[SharedMemory, FloatArray]:
    """Attach to a segment by descriptor (subprocess side).

    On 3.13+ the attachment opts out of resource tracking entirely
    (``track=False``): only the creating allocator may unlink.  On older
    Pythons the attach re-registers the name — harmless *under the fork
    start method*, which the process backend pins: the forked child
    shares the parent's resource tracker, whose cache keys names in a
    set, so the duplicate register is a no-op and the creator's unlink
    performs the single matching unregister.  (Explicitly unregistering
    here instead would erase the creator's registration from the shared
    cache and make the eventual unlink crash the tracker.)
    """
    name, shape = desc
    if sys.version_info >= (3, 13):
        shm = SharedMemory(name=name, track=False)
    else:
        shm = SharedMemory(name=name)
    arr: FloatArray = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
    return shm, arr


def detach_shm(shm: SharedMemory) -> None:
    """Close a subprocess-side attachment without unlinking the segment."""
    try:
        shm.close()
    except BufferError:
        pass  # a view outlived the task; dropped with the cache entry
