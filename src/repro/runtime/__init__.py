"""Simulated distributed runtime: workers, cluster, tracing, messages."""

from .backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    available_backends,
    make_backend,
)
from .chaos import (
    RECOVERY_POLICIES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultStats,
)
from .cluster import Cluster
from .debug import check_cluster_invariants
from .health import HealthMonitor, HealthPolicy, HealthState
from .faults import (
    crash_and_recover,
    crash_worker,
    recover_worker,
    recover_worker_from_snapshot,
    redistribute_worker,
)
from .index import GlobalIndex
from .kernels import (
    KERNEL_TIERS,
    KernelTier,
    available_tiers,
    make_tier,
    register_tier,
)
from .message import (
    DeltaRows,
    Message,
    MessageKind,
    delta_row_words,
    dense_row_words,
    dv_payload_words,
)
from .metrics import LoadSnapshot, snapshot_load
from .supervisor import Supervisor
from .tracing import PhaseRecord, Tracer
from .worker import Worker

__all__ = [
    "Cluster",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "available_backends",
    "make_backend",
    "KERNEL_TIERS",
    "KernelTier",
    "available_tiers",
    "make_tier",
    "register_tier",
    "check_cluster_invariants",
    "crash_worker",
    "recover_worker",
    "recover_worker_from_snapshot",
    "redistribute_worker",
    "crash_and_recover",
    "RECOVERY_POLICIES",
    "FaultEvent",
    "FaultStats",
    "FaultPlan",
    "FaultInjector",
    "HealthMonitor",
    "HealthPolicy",
    "HealthState",
    "Supervisor",
    "Worker",
    "GlobalIndex",
    "Tracer",
    "PhaseRecord",
    "Message",
    "MessageKind",
    "DeltaRows",
    "dense_row_words",
    "delta_row_words",
    "dv_payload_words",
    "LoadSnapshot",
    "snapshot_load",
]
