"""Simulated distributed runtime: workers, cluster, tracing, messages."""

from .cluster import Cluster
from .debug import check_cluster_invariants
from .faults import crash_and_recover, crash_worker, recover_worker
from .index import GlobalIndex
from .message import Message, MessageKind, dv_payload_words
from .metrics import LoadSnapshot, snapshot_load
from .tracing import PhaseRecord, Tracer
from .worker import Worker

__all__ = [
    "Cluster",
    "check_cluster_invariants",
    "crash_worker",
    "recover_worker",
    "crash_and_recover",
    "Worker",
    "GlobalIndex",
    "Tracer",
    "PhaseRecord",
    "Message",
    "MessageKind",
    "dv_payload_words",
    "LoadSnapshot",
    "snapshot_load",
]
