"""A simulated processor: local sub-graph, distance vectors, kernels.

Each worker owns a block of vertices and maintains:

* ``local_graph`` — the induced graph on its owned vertices,
* ``cut_adj`` — cut edges to *external boundary* vertices owned elsewhere,
* ``local_apsp`` — all-pairs shortest paths **within** the local sub-graph
  (the IA-phase partial result, kept exact under incremental additions),
* ``dv`` — the distance-vector matrix: ``dv[row_of[v], index.col[t]]`` is
  the current upper bound on ``d(v, t)`` for every global target ``t``.

All kernels are vectorized NumPy and meter their operation counts into the
:class:`~repro.model.cost.CostModel`, which is how modeled per-step compute
time is obtained.

Monotonicity invariant: every ``dv`` entry only ever decreases (except for
the explicit deletion-invalidation path), which is what gives the algorithm
its *anytime* property — interrupted results are valid upper bounds whose
error shrinks monotonically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from ..errors import WorkerError
from ..graph.graph import Graph
from ..graph.views import LocalSubgraph
from ..model.cost import CostModel
from ..types import FloatArray, IntArray, Rank, VertexId
from .index import GlobalIndex
from .kernels import (
    IATask,
    KernelTier,
    RelaxItems,
    SuperstepResult,
    SuperstepTask,
    make_tier,
)
from .message import DeltaRows, delta_row_words, dense_row_words
from .shm import ArrayAllocator

__all__ = ["Worker"]


class Worker:
    """One simulated processor of the anytime-anywhere cluster."""

    def __init__(
        self,
        rank: Rank,
        nprocs: int,
        index: GlobalIndex,
        cost: CostModel,
        *,
        wire_format: str = "delta",
        allocator: Optional[ArrayAllocator] = None,
        tier: Optional[KernelTier] = None,
    ) -> None:
        if wire_format not in ("dense", "delta"):
            raise WorkerError(f"unknown wire format {wire_format!r}")
        #: kernel tier executing this worker's compute (see
        #: :mod:`repro.runtime.kernels`); the oracle tier by default
        self.tier = tier if tier is not None else make_tier("numpy")
        #: where ``dv`` / ``local_apsp`` live; the process backend passes
        #: a shared-memory allocator so kernel subprocesses can attach
        self.allocator = allocator if allocator is not None else ArrayAllocator()
        self.rank = rank
        self.nprocs = nprocs
        self.index = index
        self.cost = cost
        #: boundary-row encoding: "delta" sends only improved columns
        #: (with dense fallback); "dense" is the reference oracle
        self.wire_format = wire_format
        #: relative processor speed (2.0 = twice the reference core);
        #: modeled compute charges divide by it — the heterogeneous-cloud
        #: extension of the paper's load-balance analysis
        self.speed = 1.0

        self.owned: List[VertexId] = []
        self.row_of: Dict[VertexId, int] = {}
        self.local_graph = Graph()
        #: local vertex -> {external vertex: weight}
        self.cut_adj: Dict[VertexId, Dict[VertexId, float]] = {}
        #: external vertex -> [(local vertex, weight), ...]
        self.cut_by_ext: Dict[VertexId, List[Tuple[VertexId, float]]] = {}
        #: ranks that need each owned vertex's DV row (it is in their
        #: external boundary)
        self._subscribers: Dict[VertexId, Set[Rank]] = {}
        #: per-vertex memo of the subscriber set in sorted rank order;
        #: invalidated on (un)subscription so the hot queueing paths
        #: stop re-sorting per row per superstep
        self._subs_sorted: Dict[VertexId, List[Rank]] = {}

        self._dv: FloatArray = self.allocator.adopt(
            np.zeros((0, 0), dtype=np.float64), None
        )
        self._local_apsp: FloatArray = self.allocator.adopt(
            np.zeros((0, 0), dtype=np.float64), None
        )
        #: last received DV rows of external boundary vertices
        self.ext_dvs: Dict[VertexId, FloatArray] = {}

        # --- per-step change tracking ---------------------------------
        self._pending: List[Set[VertexId]] = [set() for _ in range(nprocs)]
        self._changed_rows: Set[int] = set()
        self._dirty_cols = np.zeros(0, dtype=bool)
        self._fresh_ext: Set[VertexId] = set()
        self._full_repropagate = False

        # --- loss-tolerant channels (sequence numbers + ack/retry) ----
        #: next sequence number per destination rank
        self._send_seq: List[int] = [0] * nprocs
        #: per destination: seq -> vertex ids awaiting acknowledgement
        self._unacked: List[Dict[int, List[VertexId]]] = [
            {} for _ in range(nprocs)
        ]
        #: per destination: seq -> send attempts so far
        self._attempts: List[Dict[int, int]] = [{} for _ in range(nprocs)]
        #: per source: sequence numbers already delivered (dedup filter)
        self._seen_seq: List[Set[int]] = [set() for _ in range(nprocs)]

        # --- delta-exchange baselines ---------------------------------
        #: per destination: vertex -> snapshot of the row as of the last
        #: payload built for that rank.  A row's delta is the columns
        #: strictly below this baseline; no baseline forces a dense send.
        self._sent_rows: List[Dict[VertexId, FloatArray]] = [
            {} for _ in range(nprocs)
        ]

        # --- metering --------------------------------------------------
        self._seconds = 0.0
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # metering helpers
    # ------------------------------------------------------------------
    def _charge(self, seconds: float, counter: Optional[str] = None, n: int = 1) -> None:
        self._seconds += seconds / self.speed
        if counter:
            self.counters[counter] = self.counters.get(counter, 0) + n

    def take_compute_seconds(self) -> float:
        """Drain and return modeled compute seconds accrued since last call."""
        s = self._seconds
        self._seconds = 0.0
        return s

    @property
    def n_local(self) -> int:
        return len(self.owned)

    # ------------------------------------------------------------------
    # subscription records (with a sorted-order memo for the hot paths)
    # ------------------------------------------------------------------
    @property
    def subscribers(self) -> Dict[VertexId, Set[Rank]]:
        """Subscription records: owned vertex -> ranks needing its row.

        Mutate only through :meth:`subscribe` / :meth:`unsubscribe_rank`
        / :meth:`record_subscriber` (or wholesale assignment), so the
        sorted-order memo stays coherent.
        """
        return self._subscribers

    @subscribers.setter
    def subscribers(self, value: Dict[VertexId, Set[Rank]]) -> None:
        self._subscribers = value
        self._subs_sorted = {}

    def _sorted_subscribers(self, v: VertexId) -> List[Rank]:
        """Subscribers of ``v`` in sorted rank order (memoized)."""
        cached = self._subs_sorted.get(v)
        if cached is None:
            subs = self._subscribers.get(v)
            if not subs:
                return []
            cached = self._subs_sorted[v] = sorted(subs)
        return cached

    def record_subscriber(self, v: VertexId, dst: Rank) -> None:
        """Add a subscription record only — no row queueing, no channel
        baseline reset.  Used by recovery paths that restore who *would*
        receive each boundary row without scheduling any sends."""
        self._subscribers.setdefault(v, set()).add(dst)
        self._subs_sorted.pop(v, None)

    @property
    def n_cols(self) -> int:
        return self.dv.shape[1]

    # ------------------------------------------------------------------
    # matrix residency (routed through the backend's allocator)
    # ------------------------------------------------------------------
    @property
    def dv(self) -> FloatArray:
        """Distance-vector matrix; assignment re-homes it via the allocator."""
        return self._dv

    @dv.setter
    def dv(self, value: FloatArray) -> None:
        self._dv = self.allocator.adopt(value, self._dv)

    @property
    def local_apsp(self) -> FloatArray:
        """Local all-pairs matrix; assignment re-homes it via the allocator."""
        return self._local_apsp

    @local_apsp.setter
    def local_apsp(self, value: FloatArray) -> None:
        self._local_apsp = self.allocator.adopt(value, self._local_apsp)

    # ------------------------------------------------------------------
    # loading / domain decomposition
    # ------------------------------------------------------------------
    def load_subgraph(
        self,
        sub: LocalSubgraph,
        *,
        seed_rows: Optional[Dict[VertexId, FloatArray]] = None,
    ) -> None:
        """Install a local sub-graph (DD phase, or Repartition-S rebuild).

        ``seed_rows`` carries migrated partial results: DV rows computed by
        previous owners, reused thanks to the anytime property.
        """
        self.owned = list(sub.owned)
        self.row_of = {v: i for i, v in enumerate(self.owned)}
        self.local_graph = sub.local_graph.copy()
        self.cut_adj = {}
        self.cut_by_ext = {}
        for u, x, w in sub.cut_edges:
            self.cut_adj.setdefault(u, {})[x] = w
            self.cut_by_ext.setdefault(x, []).append((u, w))
        self.subscribers = {}
        n_cols = len(self.index)
        self.dv = np.full((len(self.owned), n_cols), np.inf, dtype=np.float64)
        for v, r in self.row_of.items():
            self.dv[r, self.index.column(v)] = 0.0
        if seed_rows:
            for v, row in seed_rows.items():
                r = self.row_of.get(v)
                if r is None:
                    raise WorkerError(f"seed row for non-owned vertex {v}")
                if row.size != n_cols:
                    raise WorkerError(
                        f"seed row for {v} has {row.size} cols, expected {n_cols}"
                    )
                np.minimum(self.dv[r], row, out=self.dv[r])
        self.ext_dvs = {}
        self.local_apsp = np.zeros((0, 0), dtype=np.float64)
        self._pending = [set() for _ in range(self.nprocs)]
        self._changed_rows = set()
        self._dirty_cols = np.zeros(n_cols, dtype=bool)
        self._fresh_ext = set()
        self._full_repropagate = False
        self._send_seq = [0] * self.nprocs
        self._unacked = [{} for _ in range(self.nprocs)]
        self._attempts = [{} for _ in range(self.nprocs)]
        self._seen_seq = [set() for _ in range(self.nprocs)]
        self._sent_rows = [{} for _ in range(self.nprocs)]

    # ------------------------------------------------------------------
    # IA phase
    # ------------------------------------------------------------------
    def run_initial_approximation(self) -> None:
        """Local APSP (multithreaded Dijkstra in the paper) on the sub-graph."""
        self._local_apsp_fold(repropagate=False)

    def recompute_local_apsp(self) -> None:
        """Full local APSP recomputation (deletions, repartition rebuilds)."""
        self._local_apsp_fold(repropagate=True)

    def _local_apsp_fold(self, *, repropagate: bool) -> None:
        """Shared IA body: CSR build, local Dijkstra, fold into ``dv``.

        ``repropagate=False`` is the IA phase proper (seed the change
        tracking and queue every boundary row); ``repropagate=True`` is
        the recomputation flavor (local structure changed, so schedule a
        full re-propagation with dense channel resets).
        """
        task = self.ia_prepare()
        if task is None:
            return
        self.tier.ia_kernel(task, self.dv, self.local_apsp)
        self.ia_apply(task, repropagate=repropagate)

    def ia_prepare(self) -> Optional[IATask]:
        """Snapshot this rank's IA work; ``None`` when nothing is owned.

        Pre-allocates ``local_apsp`` at its final ``(n, n)`` shape so a
        kernel subprocess can write the Dijkstra result straight into
        the (possibly shared-memory) destination.
        """
        n = self.n_local
        if n == 0:
            self.local_apsp = np.zeros((0, 0), dtype=np.float64)
            return None
        view = self.local_graph.to_csr(self.owned)
        cols = np.fromiter(
            (self.index.column(v) for v in self.owned), dtype=np.intp, count=n
        )
        self.local_apsp = self.allocator.empty((n, n))
        return IATask(
            matrix=view.matrix,
            cols=cols,
            n=n,
            nnz=int(view.matrix.nnz),
            tier=self.tier.name,
        )

    def ia_apply(self, task: IATask, *, repropagate: bool = False) -> None:
        """Post-kernel charges and bookkeeping for one IA task."""
        n = task.n
        self._charge(
            self.cost.dijkstra_time(n, n, task.nnz), "dijkstra_sources", n
        )
        self._charge(self.cost.relax_time(n * n))
        if repropagate:
            self.request_full_repropagate()
            return
        # everything we own changed: queue full boundary DVs for neighbors
        self._changed_rows = set(range(n))
        self._dirty_cols[:] = True
        for v in self.owned:
            self._queue_row(v)

    # ------------------------------------------------------------------
    # change tracking / messaging
    # ------------------------------------------------------------------
    def _queue_row(self, v: VertexId) -> None:
        """Queue ``v``'s DV row for every subscriber rank.

        Subscribers are a set; iterate in sorted rank order so queueing
        (and the trace events it later produces) is run-to-run stable.
        The sorted order is memoized per vertex — this runs per row per
        superstep, and re-sorting an unchanged set dominated the apply
        path.
        """
        for dst in self._sorted_subscribers(v):
            self._pending[dst].add(v)

    def _mark_row_changed(self, row: int) -> None:
        self._changed_rows.add(row)
        self._queue_row(self.owned[row])

    def _mark_rows_changed(self, rows: "IntArray") -> None:
        """Bulk version of :meth:`_mark_row_changed` for vectorized kernels."""
        idx = rows.tolist()
        self._changed_rows.update(idx)
        if not self._subscribers:
            return
        for r in idx:
            v = self.owned[r]
            for dst in self._sorted_subscribers(v):
                self._pending[dst].add(v)

    def subscribe(self, v: VertexId, dst: Rank) -> None:
        """Rank ``dst`` wants updates of ``v``'s DV row from now on."""
        if v not in self.row_of:
            raise WorkerError(f"rank {self.rank} does not own vertex {v}")
        self._subscribers.setdefault(v, set()).add(dst)
        self._subs_sorted.pop(v, None)
        self._pending[dst].add(v)  # send the current row at the next exchange
        # a (re-)subscription always starts from a dense row: the receiver
        # may have dropped (or never held) its copy
        self._sent_rows[dst].pop(v, None)

    def unsubscribe_rank(self, dst: Rank) -> None:
        """Drop all subscriptions from ``dst`` (used on repartition)."""
        for subs in self._subscribers.values():
            subs.discard(dst)
        self._subs_sorted = {}
        self._pending[dst].clear()
        self._sent_rows[dst].clear()

    def has_pending(self) -> bool:
        """True while this worker still has work that could change results:
        rows queued to peers, unacknowledged in-flight rows, unprocessed
        received rows, or unpropagated local changes."""
        return (
            any(self._pending)
            or any(self._unacked)
            or bool(self._changed_rows)
            or bool(self._fresh_ext)
            or self._full_repropagate
        )

    def pending_row_count(self) -> int:
        """Rows queued for the next boundary exchange (over all peers)."""
        return sum(len(q) for q in self._pending)

    def unacked_row_count(self) -> int:
        """Rows in flight awaiting acknowledgement (chaos exchanges)."""
        return sum(
            len(ids) for chan in self._unacked for ids in chan.values()
        )

    def _encode_row(self, dst: Rank, v: VertexId, out: DeltaRows) -> bool:
        """Encode ``v``'s current row for ``dst`` into ``out``.

        Dense on first publication (no baseline) and whenever the delta
        would not be strictly cheaper on the wire; otherwise the columns
        strictly below the channel baseline.  Advances the baseline to the
        encoded values.  Returns False when nothing needs sending (the
        row did not improve since the last send).
        """
        row = self.dv[self.row_of[v]]
        if self.wire_format != "delta":
            out.dense[v] = row.copy()
            return True
        baselines = self._sent_rows[dst]
        base = baselines.get(v)
        if base is None or base.size != row.size:
            out.dense[v] = row.copy()
            baselines[v] = row.copy()
            return True
        self._charge(self.cost.encode_time(row.size), "delta_encodes")
        cols = np.flatnonzero(row < base).astype(np.int64)
        if cols.size == 0:
            return False
        if delta_row_words(int(cols.size)) >= dense_row_words(row.size):
            out.dense[v] = row.copy()
            baselines[v] = row.copy()
            return True
        vals = row[cols].copy()
        out.sparse[v] = (cols, vals)
        base[cols] = vals  # baseline == row again on every column
        return True

    def _reset_baselines(self) -> None:
        """Invalidate every channel baseline: the next sends are dense.

        Called whenever incremental deltas stop being trustworthy — a full
        refresh/re-propagation, a deletion pass that *raised* DV entries
        (breaking the monotone premise of the delta encoding), or a column
        remap.
        """
        for baselines in self._sent_rows:
            baselines.clear()

    def build_payload(self, dst: Rank) -> DeltaRows:
        """Encoded DV rows queued for ``dst``; clears the queue."""
        out = DeltaRows()
        for v in sorted(self._pending[dst]):
            self._encode_row(dst, v, out)
        self._pending[dst].clear()
        return out

    def receive_rows(
        self, rows: Union[Dict[VertexId, FloatArray], DeltaRows]
    ) -> None:
        """Store freshly received external boundary DV rows.

        Dense rows replace the stored copy (deletion flows rely on the
        replacement to *raise* stale entries); sparse deltas scatter-merge
        into it with ``np.minimum``.  A delta for a vertex without a
        stored row is dropped: the row is only absent when this worker no
        longer tracks it, and every path that re-creates the need
        (re-subscription, recovery, full refresh) forces a dense resend.
        """
        dense = rows.dense if isinstance(rows, DeltaRows) else rows
        for v, row in dense.items():
            if row.size != self.n_cols:
                raise WorkerError(
                    f"received row of {row.size} cols, expected {self.n_cols}"
                )
            self.ext_dvs[v] = row
            self._fresh_ext.add(v)
        if not isinstance(rows, DeltaRows):
            return
        for v, (cols, vals) in rows.sparse.items():
            stored = self.ext_dvs.get(v)
            if stored is None:
                continue
            if cols.size and int(cols[-1]) >= stored.size:
                raise WorkerError(
                    f"delta for vertex {v} addresses column {int(cols[-1])}"
                    f" beyond {stored.size} stored columns"
                )
            stored[cols] = np.minimum(stored[cols], vals)
            self._fresh_ext.add(v)

    # ------------------------------------------------------------------
    # loss-tolerant channels (chaos-mode exchange path)
    # ------------------------------------------------------------------
    def outbound_packets(
        self, dst: Rank, max_retries: int
    ) -> List[Tuple[int, DeltaRows, bool]]:
        """Sequenced packets to send to ``dst`` this exchange.

        Returns ``(seq, payload, is_retry)`` triples: first every
        unacknowledged packet (a *retry* — rows are rebuilt **dense** from
        the current DV, which only sharpens the delivered upper bounds and
        stays correct even when the original delta was lost or the
        retransmission is deduplicated at the receiver), then at most one
        fresh packet draining the pending queue.  Fresh rows are
        delta-encoded exactly like :meth:`build_payload`; the baseline
        advances at build time, which is safe because retries are dense
        and the baseline is never advanced past values the receiver could
        permanently miss.  The pending set moves into the unacked buffer,
        so the convergence vote cannot pass until delivery is
        acknowledged.

        Raises :class:`~repro.errors.WorkerError` once a packet exhausts
        ``max_retries`` — a partition, not a transient fault.
        """
        packets: List[Tuple[int, DeltaRows, bool]] = []
        unacked = self._unacked[dst]
        attempts = self._attempts[dst]
        for seq in sorted(unacked):
            ids = [v for v in unacked[seq] if v in self.row_of]
            if not ids:
                # every vertex migrated away; its new owner re-sends
                del unacked[seq]
                attempts.pop(seq, None)
                continue
            unacked[seq] = ids
            n = attempts[seq] = attempts.get(seq, 0) + 1
            if n > max_retries + 1:
                raise WorkerError(
                    f"rank {self.rank} packet seq={seq} to rank {dst}"
                    f" exceeded {max_retries} retries (network partition?)"
                )
            payload = DeltaRows(
                dense={v: self.dv[self.row_of[v]].copy() for v in ids}
            )
            packets.append((seq, payload, n > 1))
        fresh = sorted(v for v in self._pending[dst] if v in self.row_of)
        self._pending[dst].clear()
        if fresh:
            payload = DeltaRows()
            sent = [v for v in fresh if self._encode_row(dst, v, payload)]
            if sent:
                seq = self._send_seq[dst]
                self._send_seq[dst] += 1
                unacked[seq] = sent
                attempts[seq] = 1
                packets.append((seq, payload, False))
        return packets

    def ack_packet(self, dst: Rank, seq: int) -> None:
        """Destination acknowledged packet ``seq``; stop retrying it."""
        self._unacked[dst].pop(seq, None)
        self._attempts[dst].pop(seq, None)

    def attempt_count(self, dst: Rank, seq: int) -> int:
        """Send attempts so far for packet ``(dst, seq)`` (>= 1).

        Read by the cluster right after :meth:`outbound_packets` marks a
        retry, to size the health monitor's modeled backoff delay.
        """
        return self._attempts[dst].get(seq, 1)

    def receive_packet(
        self,
        src: Rank,
        seq: int,
        rows: Union[Dict[VertexId, FloatArray], DeltaRows],
    ) -> bool:
        """Deliver a sequenced packet; returns False for a duplicate."""
        if seq in self._seen_seq[src]:
            return False
        self._seen_seq[src].add(seq)
        self.receive_rows(rows)
        return True

    def reset_channel(self, peer: Rank) -> None:
        """Forget all channel state with ``peer`` in both directions.

        Called when either endpoint crashes: the connection is
        re-established from sequence 0 and the post-recovery subscription
        refresh re-queues whatever was in flight.
        """
        self._send_seq[peer] = 0
        self._unacked[peer].clear()
        self._attempts[peer].clear()
        self._seen_seq[peer].clear()
        self._pending[peer].clear()
        self._sent_rows[peer].clear()

    def flush_unacked(self) -> None:
        """Move unacknowledged rows back to the pending queues.

        Used when chaos mode detaches mid-computation (e.g. an anytime
        budget interrupt): the reliable exchange path takes over delivery
        of whatever was still in flight.
        """
        for dst in range(self.nprocs):
            for ids in self._unacked[dst].values():
                for v in ids:
                    if v in self.row_of:
                        self._pending[dst].add(v)
                        # delivery was never confirmed, so the baseline may
                        # be ahead of the receiver: force a dense resend
                        self._sent_rows[dst].pop(v, None)
            self._unacked[dst].clear()
            self._attempts[dst].clear()

    # ------------------------------------------------------------------
    # RC-step kernels
    # ------------------------------------------------------------------
    def _relax_items(self) -> RelaxItems:
        """Consume the fresh-external set into relaxation work items.

        Relaxation order over fresh external rows must not depend on set
        hash order: min() is order-independent per entry, but the compute
        charges are traced per relaxation in loop order.
        """
        fresh = self._fresh_ext
        self._fresh_ext = set()
        items: RelaxItems = []
        for x in sorted(fresh):
            pairs = self.cut_by_ext.get(x)
            if not pairs:
                continue
            row_x = self.ext_dvs.get(x)
            if row_x is None:
                continue
            items.append((row_x, [(self.row_of[u], w) for u, w in pairs]))
        return items

    def relax_cut_edges(self) -> bool:
        """Relax cut edges against freshly received external rows.

        ``d(u, t) <- min(d(u, t), w(u, x) + d(x, t))`` for each cut edge
        ``(u, x)`` whose external row arrived since the last call.
        """
        items = self._relax_items()
        improved = self.tier.relax_cut(self.dv, self._dirty_cols, items)
        for _row_x, pairs in items:
            for _ in pairs:
                self._charge(self.cost.relax_time(self.n_cols))
        for r in improved:
            self._mark_row_changed(r)
        return bool(improved)

    def propagate_local(self) -> bool:
        """Min-plus propagation through the local sub-graph (paper's local
        Floyd–Warshall update).

        Because ``local_apsp`` is transitively closed, a single pass from
        the rows that changed since the last propagation is complete: for
        any target ``t``, ``d(x,t) <- min_k apsp(x,k) + d(k,t)`` over the
        changed sources ``k`` cannot be improved by chaining two local hops.
        """
        n = self.n_local
        if n == 0:
            # nothing to fold, but pending flags must still clear or an
            # empty worker would block the convergence vote forever
            self._full_repropagate = False
            self._changed_rows.clear()
            if self._dirty_cols.size:
                self._dirty_cols[:] = False
            return False
        if self._full_repropagate:
            rows = list(range(n))
            col_mask = np.ones(self.n_cols, dtype=bool)
            self._full_repropagate = False
        else:
            rows = sorted(self._changed_rows)
            col_mask = self._dirty_cols
        if not rows or not col_mask.any():
            self._changed_rows.clear()
            self._dirty_cols[:] = False
            return False
        cols = np.flatnonzero(col_mask)
        # The paper's recombination strategy performs the full local
        # Floyd–Warshall-style DV update each active RC step; the modeled
        # cost charges that dense fold.  The simulation computes only the
        # changed-rows x dirty-columns restriction — a pure wall-clock
        # optimization (sources that did not change cannot improve anything
        # through a transitively-closed local APSP).
        self._charge(self.cost.minplus_time(n, n, self.n_cols))
        improved_rows = self.tier.minplus_fold(
            self.local_apsp, self.dv, rows, cols
        )
        self._changed_rows.clear()
        self._dirty_cols[:] = False
        # Improved rows need only be *sent* to subscribers, not re-used as
        # local sources: local_apsp is transitively closed, so chaining two
        # local hops can never beat the single-hop fold just performed.
        for r in improved_rows:
            self._queue_row(self.owned[r])
        return bool(improved_rows)

    # ------------------------------------------------------------------
    # superstep task protocol (process backend)
    # ------------------------------------------------------------------
    def superstep_prepare(self) -> SuperstepTask:
        """Snapshot one RC superstep's inputs for an off-process kernel.

        Consumes the fresh-external set (exactly like the serial
        :meth:`relax_cut_edges`) but leaves the change-tracking flags in
        place; :meth:`superstep_apply` clears them once the kernel's
        outcome is known.
        """
        return SuperstepTask(
            n=self.n_local,
            n_cols=self.n_cols,
            relax_items=self._relax_items(),
            changed_rows=sorted(self._changed_rows),
            dirty_cols=self._dirty_cols.copy(),
            full_repropagate=self._full_repropagate,
            tier=self.tier.name,
        )

    def peek_superstep_task(self) -> SuperstepTask:
        """Snapshot the next superstep's inputs *without* consuming them.

        Used by the straggler-mitigation path to capture a speculative
        copy of a suspect rank's work before the real superstep runs.
        :meth:`_relax_items` consumes the fresh-external set, so it is
        saved and restored around the call; the returned task holds the
        same item list (same sorted order) the real superstep will see.
        """
        saved_fresh = set(self._fresh_ext)
        items = self._relax_items()
        self._fresh_ext = saved_fresh
        return SuperstepTask(
            n=self.n_local,
            n_cols=self.n_cols,
            relax_items=items,
            changed_rows=sorted(self._changed_rows),
            dirty_cols=self._dirty_cols.copy(),
            full_repropagate=self._full_repropagate,
            tier=self.tier.name,
        )

    def superstep_apply(
        self, task: SuperstepTask, result: SuperstepResult
    ) -> bool:
        """Charges + bookkeeping for a completed superstep kernel.

        Replays the exact charge sequence of the serial
        ``relax_cut_edges`` + ``propagate_local`` pair (one relax charge
        per cut-edge relaxation, then the min-plus charge iff the fold
        ran), queues improved rows to subscribers, and leaves the
        change-tracking state exactly as the serial pair would.
        """
        for _ in range(task.n_relaxations):
            self._charge(self.cost.relax_time(self.n_cols))
        for r in result.relax_improved:
            self._mark_row_changed(r)
        # the serial pair always ends a superstep with clean tracking
        # state: propagation either consumed it or cleared it unused
        self._full_repropagate = False
        self._changed_rows.clear()
        if self._dirty_cols.size:
            self._dirty_cols[:] = False
        if result.prop_charged:
            self._charge(self.cost.minplus_time(task.n, task.n, self.n_cols))
        for r in result.prop_improved:
            self._queue_row(self.owned[r])
        return result.improved

    def request_full_repropagate(self) -> None:
        """Force the next :meth:`propagate_local` to use all rows/columns
        (called after local structural changes invalidate the incremental
        change tracking).  The delta baselines are invalidated with it:
        a full re-propagation pairs with a full (dense) boundary refresh."""
        self._full_repropagate = True
        self._reset_baselines()

    def mark_all_changed(self) -> None:
        """Schedule a full-coverage propagation, keeping delta channels.

        Folds all rows over all columns next step, exactly like
        :meth:`request_full_repropagate`, but does *not* reset the
        per-channel baselines — the right call for **monotone** structural
        changes (vertex/edge additions), where every DV entry only ever
        decreases and incremental deltas therefore stay valid.  Paths that
        can *raise* entries (deletions, recovery, column remaps) must use
        :meth:`request_full_repropagate` instead.
        """
        self._changed_rows.update(range(self.n_local))
        if self._dirty_cols.size:
            self._dirty_cols[:] = True

    # ------------------------------------------------------------------
    # dynamic changes: columns and vertices
    # ------------------------------------------------------------------
    def grow_columns(self, new_n_cols: int) -> None:
        """Extend DV (and stored external rows) to ``new_n_cols`` columns.

        Mirrors paper Fig. 3 lines 14/16: "ADD new column to DV and
        initialize to infinity".
        """
        added = new_n_cols - self.n_cols
        if added < 0:
            raise WorkerError("columns cannot shrink via grow_columns")
        if added == 0:
            return
        pad = np.full((self.n_local, added), np.inf, dtype=np.float64)
        self.dv = np.hstack([self.dv, pad])
        self._dirty_cols = np.concatenate(
            [self._dirty_cols, np.zeros(added, dtype=bool)]
        )
        for x, row in list(self.ext_dvs.items()):
            self.ext_dvs[x] = np.concatenate(
                [row, np.full(added, np.inf, dtype=np.float64)]
            )
        # channel baselines grow in lockstep: the new columns are +inf on
        # both endpoints, so they enter future deltas only once they improve
        for baselines in self._sent_rows:
            for v, base in list(baselines.items()):
                baselines[v] = np.concatenate(
                    [base, np.full(added, np.inf, dtype=np.float64)]
                )
        self._charge(
            self.cost.resize_time(self.n_local + len(self.ext_dvs), added),
            "dv_resizes",
        )

    def add_local_vertex(self, v: VertexId) -> int:
        """Add an owned vertex (paper Fig. 3 lines 12-14); returns its row."""
        if v in self.row_of:
            raise WorkerError(f"vertex {v} already owned by rank {self.rank}")
        if v not in self.index.col:
            raise WorkerError(f"vertex {v} missing from global index")
        r = self.n_local
        self.owned.append(v)
        self.row_of[v] = r
        self.local_graph.add_vertex(v)
        row = np.full((1, self.n_cols), np.inf, dtype=np.float64)
        row[0, self.index.column(v)] = 0.0
        self.dv = np.vstack([self.dv, row])
        # extend local APSP with an isolated vertex
        n = r + 1
        apsp = np.full((n, n), np.inf, dtype=np.float64)
        if r:
            apsp[:r, :r] = self.local_apsp
        np.fill_diagonal(apsp, 0.0)
        self.local_apsp = apsp
        self._charge(self.cost.vertex_time(1) + self.cost.resize_time(1, n))
        self._mark_row_changed(r)
        return r

    def add_local_edge(self, u: VertexId, v: VertexId, w: float) -> None:
        """Add an intra-partition edge; incrementally repair ``local_apsp``.

        The classic incremental-APSP relaxation: paths may now route
        through the new edge in either direction.
        """
        self.local_graph.add_edge(u, v, w)
        ru, rv = self.row_of[u], self.row_of[v]
        a = self.local_apsp
        n = a.shape[0]
        cand = np.minimum(
            a[:, ru][:, None] + w + a[rv][None, :],
            a[:, rv][:, None] + w + a[ru][None, :],
        )
        self._charge(self.cost.minplus_time(n, 2, n))
        improved = cand < a
        if improved.any():
            a[improved] = cand[improved]
            # additions are monotone: full coverage, but deltas stay valid
            self.mark_all_changed()
        # the new edge also immediately improves DV rows through it
        self._relax_dv_with_local_edge(ru, rv, w)

    def _relax_dv_with_local_edge(self, ru: int, rv: int, w: float) -> None:
        for src, dst in ((ru, rv), (rv, ru)):
            cand = self.dv[src] + w
            mask = cand < self.dv[dst]
            self._charge(self.cost.relax_time(self.n_cols))
            if mask.any():
                self.dv[dst][mask] = cand[mask]
                self._dirty_cols |= mask
                self._mark_row_changed(dst)

    def add_cut_edge(self, u: VertexId, x: VertexId, w: float) -> None:
        """Register a new cut edge from owned ``u`` to external ``x``."""
        if u not in self.row_of:
            raise WorkerError(f"rank {self.rank} does not own {u}")
        self.cut_adj.setdefault(u, {})[x] = w
        lst = self.cut_by_ext.setdefault(x, [])
        lst[:] = [(a, ww) for a, ww in lst if a != u]  # re-add replaces
        lst.append((u, w))
        self._charge(self.cost.vertex_time(1))
        if x in self.ext_dvs:
            self._fresh_ext.add(x)  # relax against the stored row next step

    def remove_cut_edge(self, u: VertexId, x: VertexId) -> None:
        nbrs = self.cut_adj.get(u, {})
        nbrs.pop(x, None)
        if not nbrs:
            self.cut_adj.pop(u, None)
        lst = self.cut_by_ext.get(x)
        if lst is not None:
            self.cut_by_ext[x] = [(a, w) for a, w in lst if a != u]
            if not self.cut_by_ext[x]:
                del self.cut_by_ext[x]
                self.ext_dvs.pop(x, None)
                self._fresh_ext.discard(x)

    # ------------------------------------------------------------------
    # edge-addition / deletion relaxations (distributed, row broadcasts)
    # ------------------------------------------------------------------
    def relax_with_edge_rows(
        self,
        a: VertexId,
        row_a: FloatArray,
        b: VertexId,
        row_b: FloatArray,
        w: float,
    ) -> bool:
        """Edge-addition relaxation from broadcast endpoint rows [paper 9].

        ``d(x,t) <- min(d(x,t), d(x,a) + w + d(b,t), d(x,b) + w + d(a,t))``
        for every owned ``x`` and every target ``t`` (Fig. 3 lines 26-34).
        """
        if self.n_local == 0:
            return False
        col_a = self.index.column(a)
        col_b = self.index.column(b)
        improved_any = False
        for col_src, row in ((col_a, row_b), (col_b, row_a)):
            # The paper's relaxation is dense (every owned row x every
            # target), and the modeled cost charges that.  The simulation
            # skips +inf rows/columns — a pure wall-clock optimization that
            # cannot change any result (inf + w never improves anything).
            self._charge(self.cost.relax_time(self.n_local * self.n_cols))
            src_col = self.dv[:, col_src]
            rows_f = np.flatnonzero(np.isfinite(src_col)).astype(np.int64)
            cols_f = np.flatnonzero(np.isfinite(row))
            if rows_f.size == 0 or cols_f.size == 0:
                continue
            sub = self.dv[np.ix_(rows_f, cols_f)]
            through = src_col[rows_f][:, None] + (w + row[cols_f])[None, :]
            mask = through < sub
            if mask.any():
                sub[mask] = through[mask]
                self.dv[np.ix_(rows_f, cols_f)] = sub
                self._dirty_cols[cols_f[mask.any(axis=0)]] = True
                self._mark_rows_changed(rows_f[mask.any(axis=1)])
                improved_any = True
        return improved_any

    def invalidate_for_deleted_edge(
        self,
        u: VertexId,
        row_u: FloatArray,
        v: VertexId,
        row_v: FloatArray,
        w: float,
    ) -> int:
        """Reset DV entries whose shortest path may have used edge (u, v).

        An entry ``d(x,t)`` is *suspect* iff ``d(x,u) + w + d(v,t) == d(x,t)``
        (either orientation): some shortest path crossed the deleted edge.
        Suspect entries are reset to +inf (except exact local distances and
        the diagonal, which are restored by the caller's local-APSP
        recomputation) and rebuilt by subsequent RC steps.  Entries that are
        not suspect are untouched — their witnessing paths avoid the edge.
        """
        if self.n_local == 0:
            return 0
        col_u = self.index.column(u)
        col_v = self.index.column(v)
        # witnessed == the through-path length matches the stored distance.
        # Compare with a relative tolerance: float sums accumulate in
        # different orders on different workers, so exact equality can miss
        # a genuine witness by one ulp and leave a stale (too small)
        # distance alive.  `<=` also catches not-yet-relaxed entries, and
        # over-invalidating is always safe (the entry is just recomputed).
        bound = self.dv * (1.0 + 1e-12) + 1e-12
        suspect = (
            self.dv[:, col_u][:, None] + (w + row_v)[None, :] <= bound
        ) | (self.dv[:, col_v][:, None] + (w + row_u)[None, :] <= bound)
        self._charge(self.cost.relax_time(2 * self.n_local * self.n_cols))
        suspect &= np.isfinite(self.dv)
        # never reset the trivial diagonal
        for vtx, r in self.row_of.items():
            suspect[r, self.index.column(vtx)] = False
        count = int(suspect.sum())
        if count:
            self.dv[suspect] = np.inf
            # entries just *rose*: deltas assume monotone decrease, so every
            # channel restarts dense (the deletion flow queues a full
            # boundary refresh right after this pass)
            self._reset_baselines()
        return count

    def restore_local_baseline(self) -> None:
        """Re-apply ``local_apsp`` to the owned columns of ``dv``.

        Used after an invalidation pass that may have wiped entries that
        are exact within the local sub-graph; also forces the next
        propagation to be full.  Unlike :meth:`recompute_local_apsp` it
        does not re-run Dijkstra — the local structure did not change.
        """
        n = self.n_local
        if n == 0:
            return
        cols = np.fromiter(
            (self.index.column(v) for v in self.owned), dtype=np.intp, count=n
        )
        # fancy indexing yields a copy, so an out= write would be lost;
        # assign the minimum back explicitly
        self.dv[:, cols] = np.minimum(self.dv[:, cols], self.local_apsp)
        self._charge(self.cost.relax_time(n * n))
        self.request_full_repropagate()

    def invalidate_through_vertex(self, x: VertexId, row_x: FloatArray) -> int:
        """Reset DV entries whose shortest path may route through ``x``.

        Used by vertex deletion: ``d(a,b)`` is suspect iff
        ``d(a,x) + d(x,b) == d(a,b)``.  Entries *to* and *from* ``x`` itself
        are left alone — the caller removes that row/column entirely.
        """
        if self.n_local == 0:
            return 0
        col_x = self.index.column(x)
        # same tolerant witness test as invalidate_for_deleted_edge
        suspect = (
            self.dv[:, col_x][:, None] + row_x[None, :]
            <= self.dv * (1.0 + 1e-12) + 1e-12
        )
        self._charge(self.cost.relax_time(self.n_local * self.n_cols))
        suspect &= np.isfinite(self.dv)
        suspect[:, col_x] = False
        if x in self.row_of:
            suspect[self.row_of[x], :] = False  # the row disappears anyway
        for vtx, r in self.row_of.items():
            suspect[r, self.index.column(vtx)] = False
        count = int(suspect.sum())
        if count:
            self.dv[suspect] = np.inf
            # same monotonicity break as invalidate_for_deleted_edge
            self._reset_baselines()
        return count

    def clear_external_rows(self) -> None:
        """Drop all stored external boundary rows (stale after deletions)."""
        self.ext_dvs.clear()
        self._fresh_ext.clear()

    def queue_all_boundary_rows(self) -> None:
        """Queue every subscribed row for a full (dense) refresh.

        Deletion repairs and recovery paths call this after receivers may
        have dropped or invalidated their stored copies, so the refresh
        must not be delta-encoded against a pre-refresh baseline.
        """
        self._reset_baselines()
        for v in self.subscribers:
            self._queue_row(v)

    # ------------------------------------------------------------------
    # vertex deletion support
    # ------------------------------------------------------------------
    def remove_column(self, col: int) -> None:
        """Compact away a deleted vertex's DV column."""
        self.dv = np.delete(self.dv, col, axis=1)
        self._dirty_cols = np.delete(self._dirty_cols, col)
        for x, row in list(self.ext_dvs.items()):
            self.ext_dvs[x] = np.delete(row, col)
        # column indices shifted under the baselines: start channels dense
        self._reset_baselines()
        self._charge(self.cost.resize_time(self.n_local + len(self.ext_dvs), 1))

    def remove_local_vertex(self, v: VertexId) -> None:
        """Remove an owned vertex's row and local structure."""
        r = self.row_of.pop(v)
        self.owned.pop(r)
        for vv in self.owned[r:]:
            self.row_of[vv] -= 1
        self.dv = np.delete(self.dv, r, axis=0)
        self.local_apsp = np.delete(
            np.delete(self.local_apsp, r, axis=0), r, axis=1
        )
        self.local_graph.remove_vertex(v)
        self.cut_adj.pop(v, None)
        for x in list(self.cut_by_ext):
            self.cut_by_ext[x] = [(a, w) for a, w in self.cut_by_ext[x] if a != v]
            if not self.cut_by_ext[x]:
                del self.cut_by_ext[x]
                self.ext_dvs.pop(x, None)
                self._fresh_ext.discard(x)
        self._subscribers.pop(v, None)
        self._subs_sorted.pop(v, None)
        for pend in self._pending:
            pend.discard(v)
        for baselines in self._sent_rows:
            baselines.pop(v, None)
        # row indices shifted: conservatively re-propagate everything
        self._changed_rows = set()
        self.request_full_repropagate()
        self._charge(self.cost.vertex_time(1))

    def drop_external_vertex(self, x: VertexId) -> None:
        """Forget a deleted external vertex entirely."""
        self.ext_dvs.pop(x, None)
        self._fresh_ext.discard(x)
        self.cut_by_ext.pop(x, None)
        for u in list(self.cut_adj):
            self.cut_adj[u].pop(x, None)
            if not self.cut_adj[u]:
                del self.cut_adj[u]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def dv_row(self, v: VertexId) -> FloatArray:
        """A copy of the authoritative DV row of owned vertex ``v``."""
        return self.dv[self.row_of[v]].copy()

    def extract_rows(self, vertices: Iterable[VertexId]) -> Dict[VertexId, FloatArray]:
        """Copies of DV rows for migration (Repartition-S)."""
        return {v: self.dv[self.row_of[v]].copy() for v in vertices}

    def local_boundary_vertices(self) -> List[VertexId]:
        """Owned vertices incident to at least one cut edge."""
        return sorted(self.cut_adj)

    def __repr__(self) -> str:
        return (
            f"Worker(rank={self.rank}, owned={self.n_local},"
            f" cut={sum(len(d) for d in self.cut_adj.values())})"
        )
