"""Worker-failure injection and anytime recovery.

The paper's future work (§VI): "investigate anytime anywhere methodologies
to handle issues such as fault tolerance in the cloud".  The anytime
framework makes warm recovery natural:

* a crash destroys only *derived* state (the worker's DV matrix, local
  APSP, received boundary rows) — the graph itself is durable input;
* the surviving workers' DV entries are still **valid upper bounds**
  (distances did not change), so nothing needs invalidation;
* the recovered worker reloads its sub-graph, reruns its IA-phase local
  APSP, and the normal RC iterations restore everything else: neighbors
  re-send their subscribed boundary rows and relaxation re-derives the
  crashed worker's remote distances.

Recovery cost is charged honestly: sub-graph re-distribution words, a
fresh local Dijkstra, and the boundary-row refresh traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import RuntimeSimulationError
from ..graph.views import extract_local_subgraph
from ..types import Rank

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster

__all__ = ["crash_worker", "recover_worker", "crash_and_recover"]


def crash_worker(cluster: "Cluster", rank: Rank) -> None:
    """Simulate a crash: all derived state on ``rank`` is destroyed.

    The worker object survives as the "replacement process" slot, but its
    DV matrix, local APSP, external rows, queues and subscriptions are
    gone.  Peers' subscriptions *to* this rank also drop their queues
    (messages to a dead process are lost).
    """
    if not 0 <= rank < cluster.nprocs:
        raise RuntimeSimulationError(f"no worker with rank {rank}")
    w = cluster.workers[rank]
    n_cols = cluster.n_columns
    w.dv = np.full((w.n_local, n_cols), np.inf, dtype=np.float64)
    w.local_apsp = np.zeros((0, 0), dtype=np.float64)
    w.ext_dvs.clear()
    w._fresh_ext.clear()
    w._changed_rows.clear()
    w._dirty_cols = np.zeros(n_cols, dtype=bool)
    w._pending = [set() for _ in range(cluster.nprocs)]
    w.subscribers = {}
    w.take_compute_seconds()  # drop any un-synced metering
    for peer in cluster.workers:
        if peer.rank != rank:
            peer._pending[rank].clear()


def recover_worker(cluster: "Cluster", rank: Rank) -> None:
    """Warm-restart ``rank`` from durable inputs and anytime reuse.

    1. the coordinator re-ships the sub-graph (comm charged),
    2. the worker reloads it and reruns the IA local APSP,
    3. boundary-DV subscriptions are re-wired in *both* directions and all
       relevant rows are queued for refresh,
    so a subsequent recombination run re-converges to the exact solution.
    """
    if cluster.partition is None:
        raise RuntimeSimulationError("cluster has not been decomposed")
    w = cluster.workers[rank]
    owned = cluster.partition.block(rank)
    sub = extract_local_subgraph(
        cluster.graph, owned, cluster.partition.assignment, rank
    )
    # re-ship the sub-graph from the coordinator
    words = len(owned) + 3 * sub.local_graph.num_edges + 3 * len(sub.cut_edges)
    cluster.charge_comm_words([(0, rank, words)])
    w.load_subgraph(sub)
    w.run_initial_approximation()
    # re-wire subscriptions: the recovered worker re-subscribes at the
    # owners of its external boundary, and peers re-subscribe at it
    for x in w.cut_by_ext:
        cluster.workers[cluster.owner_of(x)].subscribe(x, rank)
    for peer in cluster.workers:
        if peer.rank == rank:
            continue
        for x in peer.cut_by_ext:
            if cluster.owner_of(x) == rank:
                w.subscribe(x, peer.rank)
    cluster.sync_compute()


def crash_and_recover(cluster: "Cluster", rank: Rank) -> None:
    """Crash ``rank`` and immediately warm-restart it (one fault event)."""
    rec_open = cluster.tracer._open is None
    if rec_open:
        cluster.tracer.begin("fault_recovery")
    crash_worker(cluster, rank)
    recover_worker(cluster, rank)
    if rec_open:
        cluster.tracer.end()
