"""Worker-failure injection and recovery mechanisms.

The paper's future work (§VI): "investigate anytime anywhere methodologies
to handle issues such as fault tolerance in the cloud".  The anytime
framework makes warm recovery natural:

* a crash destroys only *derived* state (the worker's DV matrix, local
  APSP, received boundary rows) — the graph itself is durable input;
* the surviving workers' DV entries are still **valid upper bounds**
  (distances did not change), so nothing needs invalidation;
* the recovered worker reloads its sub-graph, reruns its IA-phase local
  APSP, and the normal RC iterations restore everything else: neighbors
  re-send their subscribed boundary rows and relaxation re-derives the
  crashed worker's remote distances.

This module provides the three *mechanisms* the supervisor's policies are
built from — :func:`recover_worker` (warm IA rerun),
:func:`recover_worker_from_snapshot` (restore from an in-memory
checkpoint, skipping the Dijkstra rerun), and :func:`redistribute_worker`
(degraded mode: the dead block migrates to the survivors and the
computation continues on P−1 processors).  Recovery cost is charged
honestly in every case: sub-graph re-distribution words, any fresh local
Dijkstra, snapshot-shipping words, and the boundary-row refresh traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Container, Dict, Tuple

import numpy as np

from ..errors import RuntimeSimulationError
from ..graph.views import LocalSubgraph, extract_local_subgraph
from ..partition.base import Partition
from ..types import FloatArray, Rank
from .debug import check_cluster_invariants

if TYPE_CHECKING:  # pragma: no cover
    from ..core.checkpoint import ClusterStateSnapshot
    from .cluster import Cluster

__all__ = [
    "abandon_worker",
    "crash_worker",
    "recover_worker",
    "recover_worker_from_snapshot",
    "redistribute_worker",
    "crash_and_recover",
]


def crash_worker(cluster: "Cluster", rank: Rank) -> None:
    """Simulate a crash: all derived state on ``rank`` is destroyed.

    The worker object survives as the "replacement process" slot, but its
    DV matrix, local APSP, external rows, queues and subscriptions are
    gone.  Peers' channels *to* this rank reset (in-flight messages and
    sequence state are lost with the process; the connection re-forms
    from sequence 0 on recovery).
    """
    if not 0 <= rank < cluster.nprocs:
        raise RuntimeSimulationError(f"no worker with rank {rank}")
    w = cluster.workers[rank]
    n_cols = cluster.n_columns
    w.dv = np.full((w.n_local, n_cols), np.inf, dtype=np.float64)
    w.local_apsp = np.zeros((0, 0), dtype=np.float64)
    w.ext_dvs.clear()
    w._fresh_ext.clear()
    w._changed_rows.clear()
    w._dirty_cols = np.zeros(n_cols, dtype=bool)
    w.subscribers = {}
    w.take_compute_seconds()  # drop any un-synced metering
    for peer in cluster.workers:
        w.reset_channel(peer.rank)
        if peer.rank != rank:
            peer.reset_channel(rank)


def abandon_worker(cluster: "Cluster", rank: Rank) -> None:
    """Crash ``rank`` permanently — no recovery will follow.

    The graceful-degradation exits (crash budget exhausted, dead-fraction
    limit) retire a rank for good.  A plain :func:`crash_worker` leaves
    the cluster structurally inconsistent — all-+inf DV rows (own
    diagonal included) and an empty subscription map — which makes the
    invariant audit of any *later* recovery of a surviving rank fail on
    state the dead rank will never repair.  Abandonment therefore
    restores the two structural facts that are durable knowledge and
    cost nothing:

    * the own-diagonal zeros (d(v, v) = 0 needs no computation);
    * the owner-side subscription records (who *would* receive each
      boundary row) — records only, no rows are queued: a dead process
      sends nothing.

    Every other DV entry stays +inf, which is exactly what the degraded
    result's quality accounting reports as undelivered.
    """
    crash_worker(cluster, rank)
    w = cluster.workers[rank]
    for v in w.owned:
        w.dv[w.row_of[v], cluster.index.column(v)] = 0.0
    for peer in cluster.workers:
        if peer.rank == rank:
            continue
        for x in peer.cut_by_ext:
            if cluster.owner_of(x) == rank:
                w.record_subscriber(x, peer.rank)


def recover_worker(cluster: "Cluster", rank: Rank) -> None:
    """Warm-restart ``rank`` from durable inputs and anytime reuse.

    1. the coordinator re-ships the sub-graph (comm charged),
    2. the worker reloads it and reruns the IA local APSP,
    3. boundary-DV subscriptions are re-wired in *both* directions and all
       relevant rows are queued for refresh,
    so a subsequent recombination run re-converges to the exact solution.
    The cluster invariant audit runs at the end — a recovery that leaves
    the cluster structurally inconsistent must fail loudly, not converge
    to silently wrong centralities.
    """
    if cluster.partition is None:
        raise RuntimeSimulationError("cluster has not been decomposed")
    w = cluster.workers[rank]
    _reship_subgraph(cluster, rank)
    w.run_initial_approximation()
    _rewire_rank(cluster, rank)
    cluster.sync_compute()
    check_cluster_invariants(cluster)


def recover_worker_from_snapshot(
    cluster: "Cluster", rank: Rank, snapshot: "ClusterStateSnapshot"
) -> None:
    """Restore ``rank`` from an in-memory checkpoint (no Dijkstra rerun).

    The buddy rank ``(rank+1) % P`` holds the snapshot copy and ships it
    back (comm charged by :meth:`ClusterStateSnapshot.words`).  Saved DV
    rows are valid upper bounds as long as no deletion happened since the
    snapshot (the supervisor drops stale snapshots); columns added since
    are padded with +inf and refreshed by the normal post-recovery
    boundary traffic.  The saved local APSP is reused only if the local
    sub-graph is structurally unchanged; otherwise it is recomputed.
    """
    if cluster.partition is None:
        raise RuntimeSimulationError("cluster has not been decomposed")
    if not snapshot.compatible_with(cluster):
        raise RuntimeSimulationError(
            "snapshot columns are not a prefix of the current index"
        )
    saved_dv = snapshot.dv.get(rank)
    saved_owned = snapshot.owned.get(rank)
    if saved_dv is None or saved_owned is None:
        raise RuntimeSimulationError(f"snapshot holds no state for {rank}")
    w = cluster.workers[rank]
    sub = _reship_subgraph(cluster, rank)
    if tuple(w.owned) != saved_owned:
        raise RuntimeSimulationError(
            f"snapshot block for rank {rank} no longer matches the partition"
        )
    # the buddy ships the saved state back to the replacement process
    buddy = (rank + 1) % cluster.nprocs
    if buddy != rank:
        cluster.charge_comm_words([(buddy, rank, snapshot.words(rank))])
    n_saved = snapshot.n_cols
    np.minimum(
        w.dv[:, :n_saved], saved_dv, out=w.dv[:, :n_saved]
    )
    saved_apsp = snapshot.apsp.get(rank)
    if (
        saved_apsp is not None
        and saved_apsp.shape == (w.n_local, w.n_local)
        and snapshot.local_edges.get(rank) == sub.local_graph.num_edges
    ):
        w.local_apsp = saved_apsp.copy()
        w.restore_local_baseline()
    else:
        # local structure changed since the snapshot: Dijkstra is due
        w.run_initial_approximation()
    # everything restored must flow to subscribers and re-propagate
    w.request_full_repropagate()
    _rewire_rank(cluster, rank)
    # sorted for replay determinism: _queue_row only adds to per-channel
    # sets today, but iterating a dict in rebuild order would make this
    # path's behavior hostage to _rewire_rank's wiring order
    for v in sorted(w.subscribers):
        w._queue_row(v)
    cluster.sync_compute()
    check_cluster_invariants(cluster)


def redistribute_worker(
    cluster: "Cluster", rank: Rank, *, exclude: Container[Rank] = ()
) -> None:
    """Degraded-mode recovery: migrate the dead block to the survivors.

    Instead of restarting a replacement process, the dead rank's vertices
    are reassigned to surviving workers (neighbor-majority placement, ties
    to the least-loaded survivor) and the computation continues on P−1
    processors.  Survivors keep their DV rows (anytime reuse); the
    migrated vertices restart from +inf, exactly as a warm restart of a
    smaller block would.  ``exclude`` lists additional ranks that must not
    receive vertices (earlier redistributed failures).
    """
    if cluster.partition is None:
        raise RuntimeSimulationError("cluster has not been decomposed")
    survivors = [
        r
        for r in range(cluster.nprocs)
        if r != rank and r not in exclude
    ]
    if not survivors:
        raise RuntimeSimulationError("no surviving workers to redistribute to")
    dead_block = cluster.partition.block(rank)
    new_assignment = dict(cluster.partition.assignment)
    loads = {
        r: cluster.workers[r].n_local / cluster.workers[r].speed
        for r in survivors
    }
    survivor_set = set(survivors)
    ship_words: Dict[Rank, int] = {}
    ops = 0
    for v in dead_block:
        votes: Dict[Rank, int] = {}
        for u, _w in cluster.graph.neighbor_items(v):
            r = new_assignment.get(u)
            ops += 1
            if r in survivor_set:
                votes[r] = votes.get(r, 0) + 1
        if votes:
            best = max(votes.values())
            # iterating votes (dict) is safe here: min() with the
            # (load, rank) key is order-independent — ties break on the
            # rank itself, never on encounter order
            dst = min(
                (r for r, c in votes.items() if c == best),
                key=lambda r: (loads[r], r),
            )
        else:
            dst = min(survivors, key=lambda r: (loads[r], r))
        new_assignment[v] = dst
        loads[dst] += 1.0 / cluster.workers[dst].speed
        ship_words[dst] = (
            ship_words.get(dst, 0) + 1 + 3 * cluster.graph.degree(v)
        )
    cluster.charge_serial_compute(cluster.cost.scan_time(ops))
    # the coordinator re-ships the migrated adjacency from durable input
    cluster.charge_comm_words(
        [(0, dst, words) for dst, words in sorted(ship_words.items())]
    )
    rows = {
        v: w.dv[w.row_of[v]].copy()
        for w in cluster.workers
        if w.rank != rank
        for v in w.owned
    }
    touched = set(ship_words) | {rank}
    saved: Dict[Rank, Tuple[Tuple[int, ...], FloatArray]] = {
        w.rank: (tuple(w.owned), w.local_apsp)
        for w in cluster.workers
        if w.rank not in touched
    }
    cluster.install_partition(
        Partition(cluster.nprocs, new_assignment), seed_rows=rows
    )
    for w in cluster.workers:
        kept = saved.get(w.rank)
        if kept is not None and kept[0] == tuple(w.owned):
            w.local_apsp = kept[1]
            w.restore_local_baseline()
        else:
            w.recompute_local_apsp()
        w.queue_all_boundary_rows()
    cluster.sync_compute()
    check_cluster_invariants(cluster)


def crash_and_recover(cluster: "Cluster", rank: Rank) -> None:
    """Crash ``rank`` and immediately warm-restart it (one fault event)."""
    rec_open = cluster.tracer._open is None
    if rec_open:
        cluster.tracer.begin("fault_recovery")
    crash_worker(cluster, rank)
    recover_worker(cluster, rank)
    if rec_open:
        cluster.tracer.end()


# ----------------------------------------------------------------------
# shared recovery plumbing
# ----------------------------------------------------------------------
def _reship_subgraph(cluster: "Cluster", rank: Rank) -> LocalSubgraph:
    """Re-ship ``rank``'s sub-graph from the coordinator and reload it."""
    w = cluster.workers[rank]
    if cluster.partition is None:
        raise RuntimeSimulationError(
            "cluster has no installed partition to re-ship"
        )
    owned = cluster.partition.block(rank)
    sub = extract_local_subgraph(
        cluster.graph, owned, cluster.partition.assignment, rank
    )
    words = len(owned) + 3 * sub.local_graph.num_edges + 3 * len(sub.cut_edges)
    cluster.charge_comm_words([(0, rank, words)])
    w.load_subgraph(sub)
    return sub


def _rewire_rank(cluster: "Cluster", rank: Rank) -> None:
    """Re-wire boundary subscriptions of ``rank`` in both directions.

    Peers' stale subscription entries naming ``rank`` are cleared first so
    repeated crash/recover of the same rank cannot accumulate duplicate
    subscriptions or resurrect queues aimed at the dead incarnation.
    """
    w = cluster.workers[rank]
    for peer in cluster.workers:
        if peer.rank != rank:
            peer.unsubscribe_rank(rank)
    # cut_by_ext iterates in load_subgraph's insertion order, which is a
    # pure function of the (sorted) local sub-graph — deterministic, and
    # subscribe() itself is order-insensitive (keyed dict of sets)
    for x in w.cut_by_ext:
        cluster.workers[cluster.owner_of(x)].subscribe(x, rank)
    for peer in cluster.workers:
        if peer.rank == rank:
            continue
        for x in peer.cut_by_ext:
            if cluster.owner_of(x) == rank:
                w.subscribe(x, peer.rank)
