"""Cluster invariant checker (test/debug support).

After any sequence of dynamic operations the cluster must satisfy the
structural invariants the algorithm relies on; :func:`check_cluster_invariants`
asserts them all and is called by integration tests after complex
mutation sequences (additions + deletions + migrations + faults).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster

__all__ = ["check_cluster_invariants"]


def check_cluster_invariants(cluster: "Cluster") -> List[str]:
    """Assert all structural invariants; returns the list of checks run.

    Raises ``AssertionError`` with a descriptive message on violation.
    """
    checks: List[str] = []
    part = cluster.partition
    assert part is not None, "cluster not decomposed"

    # 1. partition covers the graph exactly
    part.validate_against(cluster.graph)
    checks.append("partition-covers-graph")

    # 2. each worker owns exactly its block, rows aligned
    for w in cluster.workers:
        assert w.owned == part.block(w.rank), f"rank {w.rank} owned mismatch"
        assert w.dv.shape == (len(w.owned), cluster.n_columns)
        for v, r in w.row_of.items():
            assert w.owned[r] == v
    checks.append("ownership-and-shapes")

    # 3. DV diagonal zeros, everything non-negative
    for w in cluster.workers:
        for v in w.owned:
            row = w.dv[w.row_of[v]]
            assert row[cluster.index.column(v)] == 0.0, f"diag({v}) != 0"
            assert (row >= 0).all(), f"negative distance in row of {v}"
    checks.append("dv-diagonal-and-sign")

    # 4. local graphs are the induced sub-graphs of the global graph
    for w in cluster.workers:
        owned = set(w.owned)
        for u, v, weight in w.local_graph.edges():
            assert cluster.graph.has_edge(u, v), f"ghost local edge ({u},{v})"
            assert cluster.graph.weight(u, v) == weight
        for u, v, weight in cluster.graph.edges():
            if u in owned and v in owned:
                assert w.local_graph.has_edge(u, v), f"missing local ({u},{v})"
    checks.append("local-graphs-induced")

    # 5. cut edges match the global graph and ownership
    for w in cluster.workers:
        for u, nbrs in w.cut_adj.items():
            assert u in w.row_of
            for x, weight in nbrs.items():
                assert cluster.owner_of(x) != w.rank, f"cut edge to own {x}"
                assert cluster.graph.has_edge(u, x), f"ghost cut ({u},{x})"
                assert cluster.graph.weight(u, x) == weight
    checks.append("cut-edges-consistent")

    # 6. every cut edge in the global graph is registered on both sides
    for u, v, weight in cluster.graph.edges():
        ru, rv = cluster.owner_of(u), cluster.owner_of(v)
        if ru == rv:
            continue
        assert cluster.workers[ru].cut_adj.get(u, {}).get(v) == weight
        assert cluster.workers[rv].cut_adj.get(v, {}).get(u) == weight
    checks.append("cut-edges-bidirectional")

    # 7. subscriptions: whoever lists x as external boundary is subscribed
    #    at x's owner
    for w in cluster.workers:
        for x in w.cut_by_ext:
            owner = cluster.workers[cluster.owner_of(x)]
            assert w.rank in owner.subscribers.get(x, set()), (
                f"rank {w.rank} not subscribed to {x}"
            )
    checks.append("subscriptions-wired")

    # 8. local APSP matrices square and zero-diagonal
    for w in cluster.workers:
        n = w.n_local
        if w.local_apsp.size:
            assert w.local_apsp.shape == (n, n)
            assert (np.diag(w.local_apsp) == 0).all()
    checks.append("local-apsp-shape")

    return checks
