"""The process backend: per-rank kernels on a persistent worker pool.

Between two BSP barriers every rank's kernels are independent, so each
superstep fans its :class:`~repro.runtime.kernels.IATask` /
:class:`~repro.runtime.kernels.SuperstepTask` out to a persistent
``ProcessPoolExecutor`` (one slot per rank).  The heavy matrices —
``dv`` and ``local_apsp`` — live in ``multiprocessing.shared_memory``
(see :mod:`repro.runtime.shm`), so only the task descriptions and
row-index outcomes cross the process boundary; the matrices themselves
are mutated in place by the children and are immediately visible to the
coordinating process, which runs the exchanges, modeled clock, chaos
injection and checkpointing unchanged.

Determinism: the children execute the exact kernel functions the serial
backend runs, one rank per task, and the coordinator merges outcomes via
``Worker.ia_apply`` / ``Worker.superstep_apply`` in rank order — the
same statements in the same order as serial, hence bitwise-identical
results, traces and modeled clocks.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, List, Optional, Tuple

from ...errors import ConfigurationError
from ...types import FloatArray
from ..kernels import (
    IATask,
    SuperstepResult,
    SuperstepTask,
    ia_kernel,
    make_tier,
    run_superstep,
)
from ..shm import (
    SharedMemoryAllocator,
    ShmDescriptor,
    attach_shm_array,
    detach_shm,
)
from ..worker import Worker
from .base import ExecutionBackend

__all__ = ["ProcessBackend"]

# ----------------------------------------------------------------------
# child-side: attachment cache + kernel entry points (module level so
# they pickle by reference)
# ----------------------------------------------------------------------

#: segment name -> (attachment, mapped array); names are never reused,
#: so a cached mapping can only go stale when the coordinator unlinks
#: the segment — and then no future task references that name again
_ATTACHED: Dict[str, Tuple[SharedMemory, FloatArray]] = {}

#: cache cap; beyond it the oldest attachments are detached (FIFO)
_ATTACH_CACHE_MAX = 128


def _attached(desc: ShmDescriptor) -> FloatArray:
    name = desc[0]
    hit = _ATTACHED.get(name)
    if hit is not None:
        return hit[1]
    while len(_ATTACHED) >= _ATTACH_CACHE_MAX:
        oldest = next(iter(_ATTACHED))
        shm, _arr = _ATTACHED.pop(oldest)
        detach_shm(shm)
    shm, arr = attach_shm_array(desc)
    _ATTACHED[name] = (shm, arr)
    return arr


def _child_ia(
    dv_desc: ShmDescriptor, apsp_desc: ShmDescriptor, task: IATask
) -> None:
    ia_kernel(task, _attached(dv_desc), _attached(apsp_desc))


def _child_ia_chunk(
    dv_desc: ShmDescriptor,
    apsp_desc: ShmDescriptor,
    task: IATask,
    lo: int,
    hi: int,
) -> None:
    """One source-chunk of a rank's IA task (tiers with chunked IA).

    Chunks of the same task write disjoint ``[lo, hi)`` row ranges of
    both shared matrices, so any number of them may run concurrently.
    """
    make_tier(task.tier).ia_chunk_kernel(
        task, lo, hi, _attached(dv_desc), _attached(apsp_desc)
    )


def _child_superstep(
    dv_desc: ShmDescriptor, apsp_desc: ShmDescriptor, task: SuperstepTask
) -> SuperstepResult:
    return run_superstep(task, _attached(dv_desc), _attached(apsp_desc))


def _child_speculative(
    task: SuperstepTask, dv: FloatArray, apsp: FloatArray
) -> Tuple[SuperstepResult, FloatArray]:
    """Speculative re-execution on plain (pickled) array copies.

    The arrays are private copies, not shared memory, so the mutated
    ``dv`` must travel back with the result for the coordinator-side
    bitwise-identity check.
    """
    return run_superstep(task, dv, apsp), dv


# ----------------------------------------------------------------------
# coordinator-side: persistent pool, grown on demand and shared by all
# ProcessBackend instances in this process
# ----------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_SIZE = 0


def _get_pool(n: int) -> ProcessPoolExecutor:
    """The shared pool, grown (never shrunk) to at least ``n`` slots.

    Pinned to the fork start method: forked children share the parent's
    shared-memory resource tracker, which is what makes segment
    attach/unlink accounting balance (see
    :func:`repro.runtime.shm.attach_shm_array`).
    """
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE < n:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "backend='process' requires the fork start method"
                " (POSIX); use backend='serial' on this platform"
            )
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = ProcessPoolExecutor(
            max_workers=n, mp_context=multiprocessing.get_context("fork")
        )
        _POOL_SIZE = n
    return _POOL


class ProcessBackend(ExecutionBackend):
    """Fan per-rank kernels out to a persistent process pool."""

    name = "process"

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.allocator = SharedMemoryAllocator()

    def _descriptors(
        self, w: Worker
    ) -> Tuple[ShmDescriptor, ShmDescriptor]:
        return (
            self.allocator.descriptor(w.dv),
            self.allocator.descriptor(w.local_apsp),
        )

    def run_ia(self, workers: List[Worker]) -> None:
        slots = max(self.nprocs, len(workers))
        pool = _get_pool(slots)
        tasks = [w.ia_prepare() for w in workers]
        futures: List[List["Future[None]"]] = []
        for w, task in zip(workers, tasks):
            if task is None:
                futures.append([])
                continue
            dv_desc, apsp_desc = self._descriptors(w)
            chunks = make_tier(task.tier).ia_chunks(task, slots)
            if len(chunks) == 1:
                # whole-rank task: the pre-tier fast path, one future
                futures.append(
                    [pool.submit(_child_ia, dv_desc, apsp_desc, task)]
                )
            else:
                # source-parallel IA: one rank's Dijkstra fans out across
                # the whole pool (chunks write disjoint rows, see
                # _child_ia_chunk), lifting the speedup cap beyond the
                # rank count
                futures.append(
                    [
                        pool.submit(
                            _child_ia_chunk, dv_desc, apsp_desc, task, lo, hi
                        )
                        for lo, hi in chunks
                    ]
                )
        for w, task, futs in zip(workers, tasks, futures):
            for fut in futs:
                fut.result()
            if task is not None:
                w.ia_apply(task)

    def relax_and_propagate(self, workers: List[Worker]) -> bool:
        pool = _get_pool(max(self.nprocs, len(workers)))
        tasks = [w.superstep_prepare() for w in workers]
        futures: List[Optional["Future[SuperstepResult]"]] = []
        for w, task in zip(workers, tasks):
            if task.n == 0 or (
                not task.relax_items
                and not task.changed_rows
                and not task.full_repropagate
            ):
                # nothing to relax and nothing to fold: the kernel would
                # return an empty result, so skip the round trip
                futures.append(None)
                continue
            dv_desc, apsp_desc = self._descriptors(w)
            futures.append(
                pool.submit(_child_superstep, dv_desc, apsp_desc, task)
            )
        changed = False
        for w, task, fut in zip(workers, tasks, futures):
            result = fut.result() if fut is not None else SuperstepResult()
            c = w.superstep_apply(task, result)
            changed = changed or c
        return changed

    def run_speculative(
        self, task: SuperstepTask, dv: FloatArray, apsp: FloatArray
    ) -> SuperstepResult:
        pool = _get_pool(max(self.nprocs, 1))
        result, out_dv = pool.submit(
            _child_speculative, task, dv, apsp
        ).result()
        # the child mutated its own pickled copy; mirror it into the
        # caller's array so the identity check sees the backup's outcome
        dv[:, :] = out_dv
        return result

    def close(self) -> None:
        self.allocator.release_all()
