"""Pluggable execution backends for the simulated cluster.

``serial`` runs every rank's kernels in the coordinating process (the
default, and the reference for bitwise identity); ``process`` fans them
out to a persistent process pool with the matrices in shared memory.
"""

from __future__ import annotations

from typing import Tuple, Union

from ...errors import ConfigurationError
from .base import ExecutionBackend
from .process import ProcessBackend
from .serial import SerialBackend

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "available_backends",
    "make_backend",
]

#: Specification accepted wherever a backend is configured.
BackendSpec = Union[str, ExecutionBackend]


def available_backends() -> Tuple[str, ...]:
    """Names accepted by ``backend=`` configuration."""
    return ("serial", "process")


def make_backend(spec: BackendSpec, nprocs: int) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance)."""
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessBackend(nprocs)
    raise ConfigurationError(
        f"unknown backend {spec!r}; expected one of {available_backends()}"
    )
