"""Execution-backend interface.

A backend decides *where* the per-rank compute kernels of the two
parallelizable phases run — the IA-phase local Dijkstra and the RC-step
superstep (cut-edge relaxation + local min-plus propagation).  Everything
else (exchanges, modeled clock, tracing, chaos, checkpointing, dynamic
change strategies) stays in the coordinating process and is backend-
agnostic.

The contract that keeps every backend bitwise-identical to serial:

* each rank's kernels between two ``sync_compute`` barriers are
  independent (they touch only that rank's ``dv`` / ``local_apsp``), so
  execution order across ranks cannot matter;
* a backend must run, per rank, the exact kernel functions in
  :mod:`repro.runtime.kernels` and merge outcomes via the worker's
  ``*_apply`` methods **in rank order**, which replays the serial charge
  sequence and queue updates exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from ...types import FloatArray
from ..kernels import SuperstepResult, SuperstepTask, run_superstep
from ..shm import ArrayAllocator
from ..worker import Worker

__all__ = ["ExecutionBackend"]


class ExecutionBackend(ABC):
    """Runs per-rank compute kernels for :class:`~repro.runtime.cluster.Cluster`."""

    #: short identifier, e.g. ``"serial"`` / ``"process"``
    name: str = "base"

    #: allocator workers must use for ``dv`` / ``local_apsp``
    allocator: ArrayAllocator

    @abstractmethod
    def run_ia(self, workers: List[Worker]) -> None:
        """Run the IA phase (local APSP + DV fold) on every worker."""

    @abstractmethod
    def relax_and_propagate(self, workers: List[Worker]) -> bool:
        """Run one RC superstep on every worker; True if anything improved."""

    def run_speculative(
        self, task: SuperstepTask, dv: FloatArray, apsp: FloatArray
    ) -> SuperstepResult:
        """Re-execute one rank's superstep on private array copies.

        The straggler-mitigation backup: runs the exact superstep kernel
        against the caller's copies of ``dv`` / ``local_apsp`` so the
        result can be verified bitwise-identical against the straggling
        rank's own outcome.  Backends may run it anywhere (the process
        backend ships it to a pool child); the default runs in-process.
        """
        return run_superstep(task, dv, apsp)

    def close(self) -> None:
        """Release backend resources (shared memory, pool slots)."""
