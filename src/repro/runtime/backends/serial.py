"""The in-process backend: today's loop, unchanged default."""

from __future__ import annotations

from typing import List

from ..shm import ArrayAllocator
from ..worker import Worker
from .base import ExecutionBackend

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Run every rank's kernels sequentially in the coordinating process."""

    name = "serial"

    def __init__(self) -> None:
        self.allocator = ArrayAllocator()

    def run_ia(self, workers: List[Worker]) -> None:
        for w in workers:
            w.run_initial_approximation()

    def relax_and_propagate(self, workers: List[Worker]) -> bool:
        changed = False
        for w in workers:
            c1 = w.relax_cut_edges()
            c2 = w.propagate_local()
            changed = changed or c1 or c2
        return changed
