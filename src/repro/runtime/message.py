"""Message types exchanged between simulated workers.

Payloads are NumPy rows of distance values; the network only *prices* them
(LogP model), delivery itself is an in-process handoff.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..types import FloatArray, Rank, VertexId

__all__ = ["MessageKind", "Message", "dv_payload_words"]


class MessageKind(enum.Enum):
    """Wire-message categories, used for tracing and accounting."""

    BOUNDARY_DV = "boundary_dv"      # RC-step boundary distance vectors
    ROW_BROADCAST = "row_broadcast"  # edge/vertex addition DV-row broadcast
    MIGRATION = "migration"          # Repartition-S partial-result movement
    CONTROL = "control"              # notifications, convergence votes
    GATHER = "gather"                # result collection


@dataclass
class Message:
    """One logical message between two ranks."""

    kind: MessageKind
    src: Rank
    dst: Rank
    #: payload rows: vertex id -> distance row (may be empty for control)
    rows: Dict[VertexId, FloatArray] = field(default_factory=dict)
    #: extra payload words beyond the rows (headers, scalars)
    extra_words: int = 0

    def payload_words(self) -> int:
        """Number of 8-byte words on the wire."""
        words = self.extra_words
        for row in self.rows.values():
            words += row.size + 1  # +1 for the vertex id header
        return words


def dv_payload_words(n_rows: int, n_cols: int) -> int:
    """Wire words for ``n_rows`` DV rows of ``n_cols`` entries each."""
    return n_rows * (n_cols + 1)
