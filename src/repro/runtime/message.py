"""Message types exchanged between simulated workers.

Payloads are NumPy rows of distance values; the network only *prices* them
(LogP model), delivery itself is an in-process handoff.

Wire pricing is unified here: every send site charges through
:func:`dense_row_words` / :func:`delta_row_words` (directly or via
:meth:`DeltaRows.words` / :meth:`Message.payload_words` /
:func:`dv_payload_words`), so the dense and delta formats are priced by
one formula each.

Two boundary-row wire formats exist (``AnytimeConfig.wire_format``):

* **dense** — a full row of ``n_cols`` values plus a 1-word vertex-id
  header: ``n_cols + 1`` words.
* **delta** — only the ``k`` columns that improved since the last send:
  a vertex-id header, a column count, and ``k`` (index, value) pairs:
  ``2k + 2`` words.  Senders fall back to dense whenever the delta would
  not be strictly cheaper (roughly ``k >= n_cols / 2``), and always send
  dense on first publication and after any event that invalidates the
  per-channel baseline (crash, re-subscription, full refresh).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..types import FloatArray, IntArray, Rank, VertexId

__all__ = [
    "MessageKind",
    "Message",
    "DeltaRows",
    "dense_row_words",
    "delta_row_words",
    "dv_payload_words",
]


def dense_row_words(n_cols: int) -> int:
    """Wire words for one dense DV row: the values + a vertex-id header."""
    return n_cols + 1


def delta_row_words(n_entries: int) -> int:
    """Wire words for one sparse delta row.

    A vertex-id header, an entry count, and an (index, value) pair per
    improved column.
    """
    return 2 * n_entries + 2


def dv_payload_words(n_rows: int, n_cols: int) -> int:
    """Wire words for ``n_rows`` dense DV rows of ``n_cols`` entries each."""
    return n_rows * dense_row_words(n_cols)


class MessageKind(enum.Enum):
    """Wire-message categories, used for tracing and accounting."""

    BOUNDARY_DV = "boundary_dv"      # RC-step boundary distance vectors
    ROW_BROADCAST = "row_broadcast"  # edge/vertex addition DV-row broadcast
    MIGRATION = "migration"          # Repartition-S partial-result movement
    CONTROL = "control"              # notifications, convergence votes
    GATHER = "gather"                # result collection


@dataclass
class DeltaRows:
    """A boundary-exchange payload mixing dense and delta-encoded rows.

    ``dense`` maps a vertex id to its full DV row (sent on first
    publication, after channel resets, and when a delta would not be
    cheaper); ``sparse`` maps a vertex id to the ``(col_indices, values)``
    of the columns that improved since the last send on this channel.
    """

    dense: Dict[VertexId, FloatArray] = field(default_factory=dict)
    sparse: Dict[VertexId, Tuple[IntArray, FloatArray]] = field(
        default_factory=dict
    )

    def __len__(self) -> int:
        return len(self.dense) + len(self.sparse)

    def __bool__(self) -> bool:
        return bool(self.dense) or bool(self.sparse)

    def __contains__(self, v: VertexId) -> bool:
        return v in self.dense or v in self.sparse

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self.vertices())

    def __getitem__(self, v: VertexId) -> FloatArray:
        """The full row for a densely-encoded vertex (KeyError for sparse)."""
        return self.dense[v]

    def vertices(self) -> List[VertexId]:
        """All vertex ids carried by this payload, sorted."""
        return sorted([*self.dense, *self.sparse])

    def words(self) -> int:
        """Wire words for this payload under the unified pricing."""
        words = 0
        for row in self.dense.values():
            words += dense_row_words(row.size)
        for cols, _vals in self.sparse.values():
            words += delta_row_words(cols.size)
        return words


@dataclass
class Message:
    """One logical message between two ranks."""

    kind: MessageKind
    src: Rank
    dst: Rank
    #: payload rows: vertex id -> distance row (may be empty for control)
    rows: Dict[VertexId, FloatArray] = field(default_factory=dict)
    #: extra payload words beyond the rows (headers, scalars)
    extra_words: int = 0

    def payload_words(self) -> int:
        """Number of 8-byte words on the wire."""
        words = self.extra_words
        for row in self.rows.values():
            words += dense_row_words(row.size)
        return words
