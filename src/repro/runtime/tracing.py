"""Execution tracing and time accounting for the simulated cluster.

The tracer records one :class:`PhaseRecord` per pipeline phase / RC step and
accumulates the two clocks the benchmarks report:

* **modeled time** — LogP communication time + cost-model compute time,
  where each synchronized step costs ``max_p(compute_p) + comm``; this is
  the clock that reproduces the paper's figures, and
* **wall time** — actual Python execution time, reported for transparency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs.events import AttrValue
from ..obs.observer import NULL_HUB, ObserverHub

__all__ = ["PhaseRecord", "Tracer"]


def _span_level(name: str) -> str:
    """Map a tracer phase name onto the span hierarchy: RC steps are
    ``superstep`` spans, every other phase is a ``phase`` span."""
    return "superstep" if name == "rc_step" else "phase"


@dataclass
class PhaseRecord:
    """Timing/volume record for one phase or RC step."""

    name: str
    step: Optional[int] = None
    modeled_compute: float = 0.0
    modeled_comm: float = 0.0
    messages: int = 0
    words: int = 0
    wall_seconds: float = 0.0
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def modeled_total(self) -> float:
        return self.modeled_compute + self.modeled_comm


class Tracer:
    """Collects phase records and aggregates the cluster clocks."""

    def __init__(self, hub: Optional[ObserverHub] = None) -> None:
        self.records: List[PhaseRecord] = []
        self.modeled_seconds = 0.0
        self.wall_seconds = 0.0
        self.total_messages = 0
        self.total_words = 0
        #: modeled seconds charged outside any open phase (convergence
        #: votes between RC steps etc.) — the profiler's coverage gap
        self.unattributed_seconds = 0.0
        self._open: Optional[PhaseRecord] = None
        self._open_wall_start = 0.0
        #: observability hub phase spans are emitted to (disabled default)
        self.hub = hub if hub is not None else NULL_HUB

    # ------------------------------------------------------------------
    def now(self) -> float:
        """The modeled clock *including* the open phase's running charge.

        This is the deterministic timestamp span events are keyed on.
        """
        if self._open is not None:
            return self.modeled_seconds + self._open.modeled_total
        return self.modeled_seconds

    # ------------------------------------------------------------------
    def begin(self, name: str, step: Optional[int] = None) -> PhaseRecord:
        """Open a phase record.

        Nested phases are rejected: opening a phase while another is
        open raises ``RuntimeError`` (an auto-close here would silently
        misattribute the first record's wall time).  Exception paths
        that must leave the tracer reusable call :meth:`abort` instead.
        """
        if self._open is not None:
            raise RuntimeError(f"phase {self._open.name!r} is still open")
        rec = PhaseRecord(name=name, step=step)
        self._open = rec
        self._open_wall_start = time.perf_counter()
        if self.hub.enabled:
            self.hub.span_begin(
                _span_level(name), name, self.modeled_seconds, step=step
            )
        return rec

    def add_compute(self, seconds: float) -> None:
        """Add modeled compute time (already max-reduced by the caller).

        Outside any open phase the charge lands directly on the totals
        (e.g. convergence votes between RC steps).
        """
        if self._open is None:
            self.modeled_seconds += seconds
            self.unattributed_seconds += seconds
        else:
            self._open.modeled_compute += seconds

    def add_comm(self, seconds: float, messages: int = 0, words: int = 0) -> None:
        if self._open is None:
            self.modeled_seconds += seconds
            self.unattributed_seconds += seconds
            self.total_messages += messages
            self.total_words += words
        else:
            self._open.modeled_comm += seconds
            self._open.messages += messages
            self._open.words += words

    def note(self, key: str, value: float) -> None:
        if self._open is not None:
            self._open.info[key] = value

    def end(self) -> PhaseRecord:
        rec = self._require_open()
        rec.wall_seconds = time.perf_counter() - self._open_wall_start
        self.records.append(rec)
        self.modeled_seconds += rec.modeled_total
        self.wall_seconds += rec.wall_seconds
        self.total_messages += rec.messages
        self.total_words += rec.words
        self._open = None
        if self.hub.enabled:
            attrs: Dict[str, AttrValue] = {
                "modeled_compute": rec.modeled_compute,
                "modeled_comm": rec.modeled_comm,
                "messages": rec.messages,
                "words": rec.words,
            }
            attrs.update(rec.info)
            self.hub.span_end(
                _span_level(rec.name),
                rec.name,
                self.modeled_seconds,
                step=rec.step,
                attrs=attrs,
                wall=rec.wall_seconds,
            )
        return rec

    def abort(self) -> Optional[PhaseRecord]:
        """Close the open phase (if any) on an exception path.

        The partial charge is kept — the modeled work *did* happen — and
        the record (and its span-end event) is marked ``aborted`` so the
        exported span tree stays balanced.  No-op when no phase is open.
        """
        if self._open is None:
            return None
        self._open.info["aborted"] = 1.0
        return self.end()

    def _require_open(self) -> PhaseRecord:
        if self._open is None:
            raise RuntimeError("no open phase")
        return self._open

    # ------------------------------------------------------------------
    def phases(self, name: str) -> List[PhaseRecord]:
        """All closed records of one phase name (e.g. ``"fault_recovery"``)."""
        return [r for r in self.records if r.name == name]

    def by_phase(self) -> Dict[str, float]:
        """Total modeled seconds per phase name."""
        acc: Dict[str, float] = {}
        for rec in self.records:
            acc[rec.name] = acc.get(rec.name, 0.0) + rec.modeled_total
        return acc

    def summary(self) -> Dict[str, float]:
        return {
            "modeled_seconds": self.modeled_seconds,
            "wall_seconds": self.wall_seconds,
            "messages": float(self.total_messages),
            "words": float(self.total_words),
            "phases": float(len(self.records)),
        }

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable dump of the full trace (for plotting)."""
        return {
            "summary": self.summary(),
            "records": [
                {
                    "name": r.name,
                    "step": r.step,
                    "modeled_compute": r.modeled_compute,
                    "modeled_comm": r.modeled_comm,
                    "messages": r.messages,
                    "words": r.words,
                    "wall_seconds": r.wall_seconds,
                    "info": dict(r.info),
                }
                for r in self.records
            ],
        }

    def save(self, path: Union[str, Path]) -> None:
        """Write :meth:`to_json` to ``path``."""
        import json

        Path(path).write_text(
            json.dumps(self.to_json(), indent=2), encoding="utf-8"
        )
