"""The ``numba`` tier: optional ``@njit``-compiled kernels.

Install with ``pip install repro[numba]``.  When numba is importable
the IA chunk kernel runs a compiled CSR Dijkstra (binary heap,
deterministic index tie-breaking) and the RC-superstep kernels run
compiled cut-edge relaxation and min-plus loops; when it is not, the
tier silently degrades to :class:`~repro.runtime.kernels.scipy_tier.
ScipyTier` behavior so ``kernel_tier="numba"`` is always safe to
request.

Accuracy contract (asserted in the test suite when numba is present):

* relaxation and min-plus are **bitwise-exact** — each candidate is a
  single float64 add and the min over exact candidates is
  order-independent, so the compiled loops reproduce the oracle's
  bits;
* Dijkstra is exact-or-bounded: equal-length shortest paths may be
  explored in a different order than scipy's implementation, and the
  per-edge partial sums of two same-length paths can round
  differently, so distances (and closeness) are only guaranteed to
  ``NUMBA_CLOSENESS_RTOL``-relative agreement with the oracle.

The modeled clock, traces and fault accounting are tier-invariant by
construction: charges are computed from task shape in the worker's
``*_apply`` methods, never inside kernels.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from ...types import BoolArray, FloatArray
from .base import IATask, RelaxItems
from .registry import register_tier
from .scipy_tier import ScipyTier

__all__ = ["HAS_NUMBA", "NUMBA_CLOSENESS_RTOL", "NumbaTier"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None  # type: ignore[assignment]
    HAS_NUMBA = False

#: Documented bound on closeness disagreement vs the ``numpy`` oracle:
#: tied shortest paths may accumulate in a different order, so each
#: distance can differ by a few ulps of rounding per path hop.
NUMBA_CLOSENESS_RTOL = 1e-9


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)  # type: ignore[misc]
    def _nb_dijkstra_sources(
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        lo: int,
        hi: int,
        out: np.ndarray,
    ) -> None:
        """CSR Dijkstra for sources ``[lo, hi)`` into ``out`` rows.

        The adjacency is stored symmetrically, so directed traversal
        equals the undirected shortest paths scipy computes.  Lazy-
        deletion binary heap with (distance, node-index) ordering for
        deterministic tie handling.
        """
        n = indptr.shape[0] - 1
        cap = data.shape[0] + 1
        heap_d = np.empty(cap, dtype=np.float64)
        heap_v = np.empty(cap, dtype=np.int64)
        done = np.empty(n, dtype=np.bool_)
        for s in range(lo, hi):
            row = out[s - lo]
            for j in range(n):
                row[j] = np.inf
                done[j] = False
            row[s] = 0.0
            heap_d[0] = 0.0
            heap_v[0] = s
            size = 1
            while size > 0:
                # pop-min
                d = heap_d[0]
                u = heap_v[0]
                size -= 1
                heap_d[0] = heap_d[size]
                heap_v[0] = heap_v[size]
                i = 0
                while True:
                    left = 2 * i + 1
                    if left >= size:
                        break
                    child = left
                    right = left + 1
                    if right < size and (
                        heap_d[right] < heap_d[left]
                        or (
                            heap_d[right] == heap_d[left]
                            and heap_v[right] < heap_v[left]
                        )
                    ):
                        child = right
                    if heap_d[child] < heap_d[i] or (
                        heap_d[child] == heap_d[i]
                        and heap_v[child] < heap_v[i]
                    ):
                        heap_d[i], heap_d[child] = heap_d[child], heap_d[i]
                        heap_v[i], heap_v[child] = heap_v[child], heap_v[i]
                        i = child
                    else:
                        break
                if done[u] or d > row[u]:
                    continue
                done[u] = True
                for e in range(indptr[u], indptr[u + 1]):
                    v = indices[e]
                    nd = d + data[e]
                    if nd < row[v]:
                        row[v] = nd
                        heap_d[size] = nd
                        heap_v[size] = v
                        i = size
                        size += 1
                        while i > 0:
                            p = (i - 1) // 2
                            if heap_d[i] < heap_d[p] or (
                                heap_d[i] == heap_d[p]
                                and heap_v[i] < heap_v[p]
                            ):
                                heap_d[i], heap_d[p] = heap_d[p], heap_d[i]
                                heap_v[i], heap_v[p] = heap_v[p], heap_v[i]
                                i = p
                            else:
                                break

    @numba.njit(cache=True)  # type: ignore[misc]
    def _nb_relax_rows(
        dv: np.ndarray,
        dirty: np.ndarray,
        row_x: np.ndarray,
        rs: np.ndarray,
        ws: np.ndarray,
    ) -> np.ndarray:
        """Relax one external row against its cut edges; exact."""
        improved = np.zeros(rs.shape[0], dtype=np.bool_)
        n_cols = row_x.shape[0]
        for idx in range(rs.shape[0]):
            r = rs[idx]
            w = ws[idx]
            any_imp = False
            for t in range(n_cols):
                cand = row_x[t] + w
                if cand < dv[r, t]:
                    dv[r, t] = cand
                    dirty[t] = True
                    any_imp = True
            improved[idx] = any_imp
        return improved

    @numba.njit(cache=True)  # type: ignore[misc]
    def _nb_minplus_cand(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``cand[i, t] = min_j a[i, j] + b[j, t]``; exact.

        Each candidate is a single float64 add and min is order-
        independent over exact values, so this equals the oracle's
        blocked broadcast bit for bit.
        """
        n, k = a.shape
        c = b.shape[1]
        cand = np.full((n, c), np.inf, dtype=np.float64)
        for j in range(k):
            for i in range(n):
                aij = a[i, j]
                if aij == np.inf:
                    continue
                for t in range(c):
                    v = aij + b[j, t]
                    if v < cand[i, t]:
                        cand[i, t] = v
        return cand


@register_tier("numba")
class NumbaTier(ScipyTier):
    """Compiled kernels when numba is installed; scipy decomposition else.

    ``compiled`` reports whether the njit path is active — ``False``
    means every call degrades to the inherited (oracle-exact) scipy
    behavior.
    """

    name = "numba"

    #: True iff numba imported and the compiled kernels are in use
    compiled: bool = HAS_NUMBA

    def ia_chunk_kernel(
        self, task: IATask, lo: int, hi: int, dv: FloatArray, apsp: FloatArray
    ) -> None:
        if not HAS_NUMBA:
            super().ia_chunk_kernel(task, lo, hi, dv, apsp)
            return
        m = task.matrix  # pragma: no cover - numba-only path
        _nb_dijkstra_sources(m.indptr, m.indices, m.data, lo, hi, apsp[lo:hi])
        cols = task.cols
        dv[lo:hi, cols] = np.minimum(dv[lo:hi, cols], apsp[lo:hi, :])

    def ia_kernel(self, task: IATask, dv: FloatArray, apsp: FloatArray) -> None:
        if not HAS_NUMBA:
            super().ia_kernel(task, dv, apsp)
            return
        self.ia_chunk_kernel(task, 0, task.n, dv, apsp)  # pragma: no cover

    def relax_cut(
        self, dv: FloatArray, dirty_cols: BoolArray, items: RelaxItems
    ) -> List[int]:
        if not HAS_NUMBA:
            return super().relax_cut(dv, dirty_cols, items)
        improved: Set[int] = set()  # pragma: no cover - numba-only path
        for row_x, pairs in items:
            rs = np.array([r for r, _ in pairs], dtype=np.int64)
            ws = np.array([w for _, w in pairs], dtype=np.float64)
            flags = _nb_relax_rows(dv, dirty_cols, row_x, rs, ws)
            for r, f in zip(rs, flags):
                if f:
                    improved.add(int(r))
        return sorted(improved)

    def minplus_fold(
        self,
        apsp: FloatArray,
        dv: FloatArray,
        rows: List[int],
        cols: IndexArray,
    ) -> List[int]:
        if not HAS_NUMBA:
            return super().minplus_fold(apsp, dv, rows, cols)
        a = np.ascontiguousarray(apsp[:, rows])  # pragma: no cover
        b = np.ascontiguousarray(dv[np.asarray(rows)][:, cols])
        cand = _nb_minplus_cand(a, b)
        improved = cand < dv[:, cols]
        if not improved.any():
            return []
        r_idx, c_idx = np.nonzero(improved)
        dv[r_idx, cols[c_idx]] = cand[improved]
        return [int(r) for r in np.flatnonzero(improved.any(axis=1))]
