"""The kernel-tier registry, mirroring ``STRATEGIES`` / ``POLICIES``.

Tiers register a zero-argument factory under a short name; config,
CLI and the process-pool children resolve tiers by that name.  Tier
instances are stateless, so :func:`make_tier` memoizes one instance
per name (pool children resolve a tier per task — a fresh object per
task would recompile numba dispatchers).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from ...errors import ConfigurationError
from .base import KernelTier

__all__ = [
    "KERNEL_TIERS",
    "TierSpec",
    "available_tiers",
    "make_tier",
    "register_tier",
]

#: Specification accepted wherever a kernel tier is configured.
TierSpec = Union[str, KernelTier]

TierFactory = Callable[[], KernelTier]

#: name -> zero-argument tier factory, in registration order
KERNEL_TIERS: Dict[str, TierFactory] = {}

_INSTANCES: Dict[str, KernelTier] = {}


def register_tier(
    name: str,
    factory: Optional[TierFactory] = None,
    *,
    overwrite: bool = False,
) -> Callable[[TierFactory], TierFactory]:
    """Register a tier factory under ``name`` (usable as a decorator)."""

    def _register(f: TierFactory) -> TierFactory:
        if not overwrite and name in KERNEL_TIERS:
            raise ConfigurationError(
                f"kernel tier {name!r} is already registered"
            )
        KERNEL_TIERS[name] = f
        _INSTANCES.pop(name, None)
        return f

    if factory is not None:
        _register(factory)
        return factory
    return _register


def available_tiers() -> Tuple[str, ...]:
    """Names accepted by ``kernel_tier=`` configuration."""
    return tuple(KERNEL_TIERS)


def make_tier(spec: TierSpec) -> KernelTier:
    """Resolve a tier name (or pass through an instance)."""
    if isinstance(spec, KernelTier):
        return spec
    tier = _INSTANCES.get(spec)
    if tier is not None:
        return tier
    factory = KERNEL_TIERS.get(spec)
    if factory is None:
        raise ConfigurationError(
            f"unknown kernel tier {spec!r}; expected one of"
            f" {available_tiers()}"
        )
    tier = _INSTANCES[spec] = factory()
    return tier
