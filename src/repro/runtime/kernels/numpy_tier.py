"""The ``numpy`` tier: the oracle statements, one task per rank.

This tier is the reference every other tier is pinned against.  It
delegates straight to :mod:`repro.runtime.kernels.oracle` and never
splits IA tasks, so the process backend submits exactly one future per
rank — the pre-tier behavior, unchanged.
"""

from __future__ import annotations

from typing import List

from ...types import BoolArray, FloatArray
from . import oracle
from .base import IATask, IndexArray, KernelTier, RelaxItems
from .registry import register_tier

__all__ = ["NumpyTier"]


@register_tier("numpy")
class NumpyTier(KernelTier):
    """The bitwise oracle: pure NumPy/SciPy, whole-rank IA tasks."""

    name = "numpy"

    def ia_kernel(self, task: IATask, dv: FloatArray, apsp: FloatArray) -> None:
        oracle.ia_kernel(task, dv, apsp)

    def ia_chunk_kernel(
        self, task: IATask, lo: int, hi: int, dv: FloatArray, apsp: FloatArray
    ) -> None:
        oracle.ia_chunk_kernel(task, lo, hi, dv, apsp)

    def relax_cut(
        self, dv: FloatArray, dirty_cols: BoolArray, items: RelaxItems
    ) -> List[int]:
        return oracle.relax_cut_kernel(dv, dirty_cols, items)

    def minplus_fold(
        self,
        apsp: FloatArray,
        dv: FloatArray,
        rows: List[int],
        cols: IndexArray,
    ) -> List[int]:
        return oracle.minplus_fold(apsp, dv, rows, cols)
