"""The ``scipy`` tier: source-chunked IA for intra-rank parallelism.

The IA hot path — one all-pairs Dijkstra per rank — is a single
indivisible task under the ``numpy`` tier, so the process backend's
speedup saturates at the rank count.  ``csgraph.dijkstra`` computes
each source independently, which means one rank's task can split into
many ``indices=``-restricted chunks that fan out across the whole pool
and recombine bitwise-identically:

* the Dijkstra rows of a chunk equal the same rows of the full call
  (per-source independence), and
* each chunk folds only its own ``[lo, hi)`` rows of ``dv`` / ``apsp``
  (source ``s`` only ever updates row ``s``), so chunks touch disjoint
  memory and may run concurrently against the same shared arrays.

The RC-superstep kernels are the oracle's — this tier only changes how
IA work is decomposed, not any arithmetic.
"""

from __future__ import annotations

from .base import ChunkList, IATask
from .numpy_tier import NumpyTier
from .registry import register_tier

__all__ = ["ScipyTier"]

#: Target chunks per pool slot: enough to load-balance uneven ranks
#: without drowning the pool in per-task overhead.
_CHUNKS_PER_SLOT = 4

#: Minimum sources per chunk; below this the submit/pickle overhead
#: dominates the Dijkstra work.
_MIN_CHUNK = 64


@register_tier("scipy")
class ScipyTier(NumpyTier):
    """Oracle arithmetic with source-parallel IA decomposition."""

    name = "scipy"

    def ia_chunks(self, task: IATask, parallelism: int) -> ChunkList:
        n = task.n
        size = max(_MIN_CHUNK, -(-n // max(1, parallelism * _CHUNKS_PER_SLOT)))
        if size >= n:
            return [(0, n)]
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]
