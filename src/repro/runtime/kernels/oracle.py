"""The pure NumPy/SciPy kernel statements — the bitwise oracle.

These are the original single-implementation kernels, kept as plain
module functions: every other tier is measured against them, and the
``numpy`` tier runs them verbatim.  The serial backend, the process
backend and every tier/backend combination must produce results
bitwise-identical to these statements executed in serial order.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np
import scipy.sparse.csgraph as csgraph

from ...types import BoolArray, FloatArray
from .base import IATask, IndexArray, RelaxItems

__all__ = [
    "ia_kernel",
    "ia_chunk_kernel",
    "relax_cut_kernel",
    "minplus_fold",
]

#: Cap on the float64 element count of the batched min-plus broadcast
#: temporary (``n_rows x block x n_cols``); 2**21 elements = 16 MB.
_MINPLUS_BLOCK_ELEMS = 1 << 21

#: Max sources folded per ``np.minimum`` call in the batched kernel.
_MINPLUS_MAX_BLOCK = 64


def ia_kernel(task: IATask, dv: FloatArray, apsp: FloatArray) -> None:
    """Local APSP (the paper's multithreaded Dijkstra) + DV column fold.

    Writes into the caller-allocated ``apsp`` (shape ``(n, n)``) and
    folds it into the owned columns of ``dv`` in place.
    """
    apsp[:, :] = csgraph.dijkstra(task.matrix, directed=False)
    cols = task.cols
    # fancy indexing yields a copy, so an out= write would be lost;
    # assign the minimum back explicitly
    dv[:, cols] = np.minimum(dv[:, cols], apsp)


def ia_chunk_kernel(
    task: IATask, lo: int, hi: int, dv: FloatArray, apsp: FloatArray
) -> None:
    """IA restricted to sources ``[lo, hi)``; bitwise-equal to the full run.

    Dijkstra computes each source independently, so the ``indices=``
    rows equal the same rows of the full all-sources call, and the fold
    touches only DV rows ``[lo, hi)`` (source ``s`` folds
    ``apsp[s, j]`` into ``dv[s, cols[j]]``) — chunks write disjoint row
    ranges of both matrices and compose, in any order or concurrently,
    to exactly the full :func:`ia_kernel` outcome.
    """
    apsp[lo:hi, :] = csgraph.dijkstra(
        task.matrix, directed=False, indices=np.arange(lo, hi)
    )
    cols = task.cols
    dv[lo:hi, cols] = np.minimum(dv[lo:hi, cols], apsp[lo:hi, :])


def relax_cut_kernel(
    dv: FloatArray,
    dirty_cols: BoolArray,
    items: RelaxItems,
) -> List[int]:
    """Cut-edge relaxation: ``d(u,t) <- min(d(u,t), w(u,x) + d(x,t))``.

    Mutates ``dv`` and ``dirty_cols`` in place; returns the sorted local
    rows that improved.  Item order is fixed by the caller (sorted
    external vertex, then cut-edge registration order), so repeated runs
    relax in the same sequence.
    """
    improved: Set[int] = set()
    for row_x, pairs in items:
        for r, w in pairs:
            cand = row_x + w
            mask = cand < dv[r]
            if mask.any():
                dv[r][mask] = cand[mask]
                dirty_cols |= mask
                improved.add(r)
    return sorted(improved)


def minplus_fold(
    apsp: FloatArray, dv: FloatArray, rows: List[int], cols: IndexArray
) -> List[int]:
    """Blocked batched min-plus fold; returns the sorted rows improved.

    ``d(x,t) <- min_k apsp(x,k) + d(k,t)`` over changed sources ``k``
    (``rows``) and dirty targets ``t`` (``cols``), written back into
    ``dv`` in place.  Folds 32-64 sources per ``np.minimum`` call, with
    the ``(n x block x c)`` broadcast temporary capped at a fixed element
    budget.  Bitwise-identical to a per-source fold: float64 min is
    exact and order-independent, and distances never produce NaNs.

    The write-back scatters only the entries that improved instead of
    assigning the whole ``dv[:, cols]`` submatrix — bitwise-equivalent
    (unimproved entries are rewritten with their own value either way)
    but proportional to the improvement count, which is small in late
    supersteps.
    """
    n = apsp.shape[0]
    a = apsp[:, rows]                  # (n, k)
    b = dv[np.asarray(rows)][:, cols]  # (k, c)
    c = len(cols)
    cand = np.full((n, c), np.inf, dtype=np.float64)
    block = max(
        1, min(_MINPLUS_MAX_BLOCK, _MINPLUS_BLOCK_ELEMS // max(1, n * c))
    )
    k = len(rows)
    for j0 in range(0, k, block):
        ab = a[:, j0:j0 + block]                    # (n, bk)
        keep = np.isfinite(ab).any(axis=0)
        if not keep.any():
            continue
        if not keep.all():
            ab = ab[:, keep]
        bb = b[j0:j0 + block][keep]                 # (bk, c)
        np.minimum(
            cand,
            np.min(ab[:, :, None] + bb[None, :, :], axis=1),
            out=cand,
        )
    improved = cand < dv[:, cols]
    if not improved.any():
        return []
    # np.nonzero walks row-major, matching cand[improved]'s element order
    r_idx, c_idx = np.nonzero(improved)
    dv[r_idx, cols[c_idx]] = cand[improved]
    return [int(r) for r in np.flatnonzero(improved.any(axis=1))]
