"""Tiered compute kernels shared by the serial and process backends.

The heavy per-rank work of the two parallelizable phases — the IA-phase
local Dijkstra and the RC-step superstep (cut-edge relaxation + local
min-plus propagation) — is factored into *kernel tiers*: pluggable
implementations selected via ``AnytimeConfig.kernel_tier`` /
``$REPRO_KERNEL_TIER`` / ``--kernel-tier`` and registered in
:data:`KERNEL_TIERS` (mirroring ``STRATEGIES`` / ``POLICIES``):

``numpy``
    the original NumPy/SciPy statements (:mod:`.oracle`), kept as the
    bitwise oracle every other tier is pinned against;
``scipy``
    the same arithmetic with source-chunked IA
    (``csgraph.dijkstra(indices=...)``), so one rank's all-pairs
    Dijkstra fans out across the whole process pool;
``numba``
    optional ``@njit``-compiled kernels (``pip install repro[numba]``),
    auto-falling back to ``scipy`` behavior when numba is absent.

Kernels touch only a picklable *task* (built by the worker in the
coordinating process) and the worker's two large matrices ``dv`` /
``local_apsp``, passed in explicitly so a subprocess can supply
shared-memory views.  Everything stateful (change tracking, subscriber
queues, modeled LogP charges, counters) stays in
:class:`~repro.runtime.worker.Worker`, which splits each phase into
*prepare* (build the task), *kernel* (this package, runnable anywhere),
and *apply* (charges + bookkeeping).  Charges are computed from task
shape only, which is what keeps the modeled clock, traces and fault
accounting invariant across tiers.

The module-level :func:`ia_kernel` / :func:`run_superstep` dispatch on
the task's ``tier`` name (the process-pool entry points);
:func:`relax_cut_kernel` / :func:`minplus_fold` re-export the oracle
implementations for direct use and tests.
"""

from __future__ import annotations

from ...types import FloatArray
from .base import (
    ChunkList,
    IATask,
    IndexArray,
    KernelTier,
    RelaxItems,
    SuperstepResult,
    SuperstepTask,
)
from .oracle import ia_chunk_kernel, minplus_fold, relax_cut_kernel
from .registry import (
    KERNEL_TIERS,
    TierSpec,
    available_tiers,
    make_tier,
    register_tier,
)

# importing the tier modules registers them (in tier order)
from .numpy_tier import NumpyTier
from .scipy_tier import ScipyTier
from .numba_tier import HAS_NUMBA, NUMBA_CLOSENESS_RTOL, NumbaTier

__all__ = [
    "ChunkList",
    "HAS_NUMBA",
    "IATask",
    "IndexArray",
    "KERNEL_TIERS",
    "KernelTier",
    "NUMBA_CLOSENESS_RTOL",
    "NumbaTier",
    "NumpyTier",
    "RelaxItems",
    "ScipyTier",
    "SuperstepResult",
    "SuperstepTask",
    "TierSpec",
    "available_tiers",
    "ia_chunk_kernel",
    "ia_kernel",
    "make_tier",
    "minplus_fold",
    "register_tier",
    "relax_cut_kernel",
    "run_superstep",
]


def ia_kernel(task: IATask, dv: FloatArray, apsp: FloatArray) -> None:
    """Run one full IA task under the tier named by ``task.tier``."""
    make_tier(task.tier).ia_kernel(task, dv, apsp)


def run_superstep(
    task: SuperstepTask, dv: FloatArray, apsp: FloatArray
) -> SuperstepResult:
    """Run one RC superstep under the tier named by ``task.tier``."""
    return make_tier(task.tier).run_superstep(task, dv, apsp)
