"""Task shapes and the kernel-tier interface.

The per-rank compute of the two parallelizable phases travels as
picklable *task* dataclasses (built by the worker in the coordinating
process) plus the worker's two large matrices ``dv`` / ``local_apsp``,
passed in explicitly so a subprocess can supply shared-memory views.

A :class:`KernelTier` is one implementation of the compute itself: the
``numpy`` tier is the bitwise oracle (the original NumPy/SciPy
statements), the ``scipy`` tier splits one rank's IA into many
source-chunks that fan out across the process pool, and the ``numba``
tier swaps in ``@njit``-compiled kernels when numba is installed.
Every tier must keep closeness, traces and the modeled clock invariant:
the modeled charges are computed from task *shape* only (``n``,
``nnz``), in the worker's ``*_apply`` methods, so they cannot depend on
which tier executed the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

import numpy as np
from numpy.typing import NDArray

from ...types import BoolArray, FloatArray

#: DV column indices as produced by ``np.flatnonzero`` / index building.
IndexArray = NDArray[np.intp]

#: Cut-edge relaxation inputs: per fresh external row, the received DV
#: row and the ``(local row, edge weight)`` pairs relaxed against it.
RelaxItems = List[Tuple[FloatArray, List[Tuple[int, float]]]]

#: Half-open ``[lo, hi)`` source ranges one rank's IA splits into.
ChunkList = List[Tuple[int, int]]

__all__ = [
    "ChunkList",
    "IATask",
    "IndexArray",
    "KernelTier",
    "RelaxItems",
    "SuperstepResult",
    "SuperstepTask",
]


@dataclass
class IATask:
    """One rank's IA-phase work: local APSP + fold into owned DV columns."""

    #: local adjacency in CSR form (scipy matrix; picklable)
    matrix: Any
    #: global DV column of each owned vertex, in row order
    cols: IndexArray
    #: number of owned vertices (== rows of ``local_apsp``)
    n: int
    #: directed stored-edge count of ``matrix`` (for the modeled charge)
    nnz: int
    #: kernel tier executing this task (resolved by name in pool children)
    tier: str = "numpy"


@dataclass
class SuperstepTask:
    """One rank's RC-superstep work (relaxation inputs + fold extent)."""

    n: int
    n_cols: int
    #: per fresh external row, in relaxation order: the received DV row
    #: and the ``(local row, cut-edge weight)`` pairs relaxed against it
    relax_items: RelaxItems
    #: rows already marked changed before this superstep, sorted
    changed_rows: List[int]
    #: private copy of the dirty-column mask (the kernel extends it with
    #: the columns the relaxation improves)
    dirty_cols: BoolArray
    full_repropagate: bool
    #: kernel tier executing this task (resolved by name in pool children)
    tier: str = "numpy"

    @property
    def n_relaxations(self) -> int:
        return sum(len(pairs) for _row, pairs in self.relax_items)


@dataclass
class SuperstepResult:
    """What the coordinating process needs back from a superstep kernel."""

    #: local rows the cut-edge relaxation improved, sorted
    relax_improved: List[int] = field(default_factory=list)
    #: True iff the propagation fold ran (and its compute must be charged)
    prop_charged: bool = False
    #: local rows the propagation fold improved, sorted
    prop_improved: List[int] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return bool(self.relax_improved) or bool(self.prop_improved)


class KernelTier:
    """One implementation of the per-rank compute kernels.

    Subclasses override the arithmetic; the superstep *structure* (which
    rows/columns fold, in what order outcomes are reported) is fixed
    here so every tier makes the same decisions as the serial oracle.

    Location transparency: tier methods receive ``dv`` / ``local_apsp``
    as parameters and must never stash them — the backend decides
    whether they are private arrays or shared-memory views.
    """

    #: registry name, e.g. ``"numpy"`` / ``"scipy"`` / ``"numba"``
    name: str = "base"

    # -- IA phase ------------------------------------------------------
    def ia_chunks(self, task: IATask, parallelism: int) -> ChunkList:
        """Split ``task``'s sources into independently runnable chunks.

        The default is one chunk (the whole task); tiers that support
        source-parallel IA return many so the backend can fan one
        rank's Dijkstra out across the pool.  ``parallelism`` is the
        number of pool slots available.
        """
        return [(0, task.n)]

    def ia_kernel(self, task: IATask, dv: FloatArray, apsp: FloatArray) -> None:
        """Full IA task: local APSP into ``apsp`` + owned-column DV fold."""
        raise NotImplementedError

    def ia_chunk_kernel(
        self, task: IATask, lo: int, hi: int, dv: FloatArray, apsp: FloatArray
    ) -> None:
        """IA sources ``[lo, hi)`` only: disjoint ``apsp`` / ``dv`` rows.

        Chunks write disjoint row ranges of both matrices, so chunks of
        one task may run concurrently against the same shared memory.
        """
        raise NotImplementedError

    # -- RC superstep --------------------------------------------------
    def relax_cut(
        self, dv: FloatArray, dirty_cols: BoolArray, items: RelaxItems
    ) -> List[int]:
        """Cut-edge relaxation; returns the sorted local rows improved."""
        raise NotImplementedError

    def minplus_fold(
        self,
        apsp: FloatArray,
        dv: FloatArray,
        rows: List[int],
        cols: IndexArray,
    ) -> List[int]:
        """Min-plus propagation fold; returns the sorted rows improved."""
        raise NotImplementedError

    def run_superstep(
        self, task: SuperstepTask, dv: FloatArray, apsp: FloatArray
    ) -> SuperstepResult:
        """One rank's full RC superstep: relaxation then propagation.

        Mirrors the serial ``relax_cut_edges`` + ``propagate_local``
        pair decision-for-decision; the only difference is that
        change-tracking state arrives snapshotted inside ``task`` and
        the outcomes travel back in a :class:`SuperstepResult` instead
        of mutating the worker.
        """
        dirty = task.dirty_cols
        relax_improved = self.relax_cut(dv, dirty, task.relax_items)
        n = task.n
        if n == 0:
            return SuperstepResult(relax_improved=relax_improved)
        if task.full_repropagate:
            rows = list(range(n))
            col_mask = np.ones(task.n_cols, dtype=bool)
        else:
            rows = sorted(set(task.changed_rows) | set(relax_improved))
            col_mask = dirty
        if not rows or not col_mask.any():
            return SuperstepResult(relax_improved=relax_improved)
        cols = np.flatnonzero(col_mask)
        prop_improved = self.minplus_fold(apsp, dv, rows, cols)
        return SuperstepResult(
            relax_improved=relax_improved,
            prop_charged=True,
            prop_improved=prop_improved,
        )
