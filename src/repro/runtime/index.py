"""Global vertex index: vertex id <-> DV column.

Every worker's DV matrix shares the same column layout, defined by the
order vertices entered the computation.  Dynamic vertex additions append
columns; vertex deletions free columns (the column is compacted away).

In a real MPI deployment each rank keeps a replica of this index and the
O(k) maintenance broadcast is part of the vertex-addition cost, which the
cost model charges; in the simulation the object is shared.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import VertexNotFound
from ..types import VertexId

__all__ = ["GlobalIndex"]


class GlobalIndex:
    """Bidirectional map between vertex ids and dense column indices."""

    def __init__(self, vertices: Iterable[VertexId] = ()) -> None:
        self.ids: List[VertexId] = []
        self.col: Dict[VertexId, int] = {}
        for v in vertices:
            self.add(v)

    def add(self, v: VertexId) -> int:
        """Register ``v``; returns its column.  Idempotent."""
        existing = self.col.get(v)
        if existing is not None:
            return existing
        c = len(self.ids)
        self.ids.append(v)
        self.col[v] = c
        return c

    def add_many(self, vertices: Iterable[VertexId]) -> List[int]:
        return [self.add(v) for v in vertices]

    def column(self, v: VertexId) -> int:
        try:
            return self.col[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def columns(self, vertices: Iterable[VertexId]) -> List[int]:
        return [self.column(v) for v in vertices]

    def vertex_at(self, column: int) -> VertexId:
        return self.ids[column]

    def remove(self, v: VertexId) -> int:
        """Remove ``v``; returns the column that disappeared.

        All columns after it shift left by one — callers must compact their
        DV matrices with the returned column index.
        """
        c = self.column(v)
        self.ids.pop(c)
        del self.col[v]
        for i in range(c, len(self.ids)):
            self.col[self.ids[i]] = i
        return c

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, v: VertexId) -> bool:
        return v in self.col
