"""The simulated SPMD cluster.

Owns the global graph, the global vertex index, the workers, and the two
clocks (modeled LogP time, wall time).  The cluster provides the
*synchronization and communication primitives* that the core algorithm
phases (``repro.core``) orchestrate:

* :meth:`decompose` — DD: partition, build local sub-graphs, wire
  boundary-DV subscriptions,
* :meth:`exchange_boundary` — the personalized all-to-all boundary-DV
  exchange of each RC step (Fig. 1 lines 9-15),
* :meth:`broadcast_row` — binomial-tree DV-row broadcast (Fig. 3 line 22),
* :meth:`sync_compute` — BSP-style barrier: charges the *max* of the
  workers' metered compute to the modeled clock.

Time accounting convention: any sequence of worker-side kernels between two
:meth:`sync_compute` calls is one superstep; its modeled duration is the
slowest worker's compute.  Communication is priced by the configured
:class:`~repro.model.schedules.CommSchedule`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    CommunicationError,
    ConfigurationError,
    RuntimeSimulationError,
)
from ..graph.graph import Graph
from ..graph.views import extract_local_subgraph
from ..model.cost import DEFAULT_COST, CostModel
from ..model.logp import DEFAULT_LOGP, LogPParams
from ..model.schedules import (
    CommSchedule,
    SequentialAllToAll,
    tree_broadcast_time,
)
from ..obs import registry as series
from ..obs.observer import NULL_HUB, ObserverHub
from ..partition.base import Partition, Partitioner
from ..types import FloatArray, Rank, VertexId
from .backends import BackendSpec, make_backend
from .index import GlobalIndex
from .kernels import SuperstepTask, TierSpec, make_tier
from .message import DeltaRows, dense_row_words, dv_payload_words
from .tracing import Tracer
from .worker import Worker

if TYPE_CHECKING:  # pragma: no cover
    from .chaos import FaultInjector
    from .health import HealthMonitor

#: per-rank speculative-execution capture: the rank's superstep task plus
#: private copies of its dv / local_apsp to re-execute the kernel on
SpecContext = Dict[Rank, Tuple[SuperstepTask, FloatArray, FloatArray]]

__all__ = ["Cluster"]


class Cluster:
    """A simulated cluster of ``nprocs`` workers around one global graph."""

    def __init__(
        self,
        graph: Graph,
        nprocs: int,
        *,
        cost: CostModel = DEFAULT_COST,
        logp: LogPParams = DEFAULT_LOGP,
        schedule: Optional[CommSchedule] = None,
        worker_speeds: Optional[Sequence[float]] = None,
        wire_format: str = "delta",
        backend: BackendSpec = "serial",
        kernel_tier: TierSpec = "numpy",
        obs: Optional[ObserverHub] = None,
    ) -> None:
        if nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
        if wire_format not in ("dense", "delta"):
            raise ConfigurationError(
                f"wire_format must be 'dense' or 'delta', got {wire_format!r}"
            )
        if worker_speeds is not None:
            if len(worker_speeds) != nprocs:
                raise ConfigurationError(
                    f"worker_speeds has {len(worker_speeds)} entries for"
                    f" {nprocs} workers"
                )
            if any(sp <= 0 for sp in worker_speeds):
                raise ConfigurationError("worker speeds must be positive")
        self.graph = graph
        self.nprocs = nprocs
        self.cost = cost
        self.logp = logp
        self.schedule = schedule or SequentialAllToAll()
        self.wire_format = wire_format
        #: observability hub (disabled NULL_HUB by default); the tracer
        #: emits phase/superstep spans to it, the cluster adds
        #: rank-kernel events and per-superstep metric samples
        self.obs = obs if obs is not None else NULL_HUB
        self.tracer = Tracer(hub=self.obs)
        self.index = GlobalIndex(graph.vertex_list())
        #: where the per-rank compute kernels execute (serial / process);
        #: workers allocate dv / local_apsp through the backend so the
        #: process backend can hand shared-memory views to its pool
        self.backend = make_backend(backend, nprocs)
        #: kernel tier executing the per-rank compute (numpy oracle /
        #: source-chunked scipy / optional compiled numba)
        self.tier = make_tier(kernel_tier)
        self.workers: List[Worker] = [
            Worker(
                r,
                nprocs,
                self.index,
                cost,
                wire_format=wire_format,
                allocator=self.backend.allocator,
                tier=self.tier,
            )
            for r in range(nprocs)
        ]
        #: cost-attribution accumulators for the profiler (always on —
        #: pure bookkeeping over already-metered values, never touches
        #: the modeled clock): per-rank metered kernel seconds, and the
        #: *charged* barrier seconds attributed to the critical rank,
        #: the active kernel tier, and the enclosing tracer phase
        self.kernel_metered_by_rank: Dict[Rank, float] = {}
        self.kernel_charged_by_rank: Dict[Rank, float] = {}
        self.kernel_charged_by_tier: Dict[str, float] = {}
        self.kernel_charged_by_phase: Dict[str, float] = {}
        self.kernel_barriers = 0
        #: boundary-exchange payload words actually put on the wire
        #: (deliveries, retries and duplicates included; acks excluded)
        self.boundary_words = 0
        #: boundary rows shipped per encoding, for bench reporting
        self.boundary_rows_dense = 0
        self.boundary_rows_sparse = 0
        if worker_speeds is not None:
            for w, sp in zip(self.workers, worker_speeds):
                w.speed = float(sp)
        self.partition: Optional[Partition] = None
        #: active fault injector (None = reliable network)
        self.chaos: Optional["FaultInjector"] = None
        self._pre_chaos_speeds: Optional[List[float]] = None
        #: active health monitor (None = no self-healing instrumentation)
        self.health: Optional["HealthMonitor"] = None
        #: non-None only during a superstep barrier with health attached;
        #: holds the speculative captures of suspected straggler ranks
        self._spec_context: Optional[SpecContext] = None
        self._closed = False

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    def owner_of(self, v: VertexId) -> Rank:
        if self.partition is None:
            raise CommunicationError("cluster has not been decomposed yet")
        try:
            return self.partition.assignment[v]
        except KeyError:
            raise CommunicationError(f"vertex {v} has no owner") from None

    def worker_owning(self, v: VertexId) -> Worker:
        return self.workers[self.owner_of(v)]

    # ------------------------------------------------------------------
    # time accounting primitives
    # ------------------------------------------------------------------
    def sync_compute(self) -> float:
        """BSP barrier: charge the slowest worker's metered compute.

        With a health monitor attached and a superstep speculation
        context set (see :meth:`relax_and_propagate`), the barrier time
        is instead the straggler-mitigated maximum: ranks past the
        deadline whose kernels were speculatively re-executed finish at
        ``deadline + backup_time`` (first completion wins).
        """
        times = [w.take_compute_seconds() for w in self.workers]
        t = max(times) if times else 0.0
        if self.health is not None and self._spec_context is not None:
            t = self._mitigated_barrier(times)
        rec = self.tracer._open
        if times:
            # critical rank = first slowest (deterministic tiebreak);
            # it is charged the whole (possibly mitigated) barrier
            crit = times.index(max(times))
            for rank, seconds in enumerate(times):
                if seconds:
                    self.kernel_metered_by_rank[rank] = (
                        self.kernel_metered_by_rank.get(rank, 0.0) + seconds
                    )
            self.kernel_charged_by_rank[crit] = (
                self.kernel_charged_by_rank.get(crit, 0.0) + t
            )
            tier_name = self.tier.name
            self.kernel_charged_by_tier[tier_name] = (
                self.kernel_charged_by_tier.get(tier_name, 0.0) + t
            )
            phase = rec.name if rec is not None else ""
            self.kernel_charged_by_phase[phase] = (
                self.kernel_charged_by_phase.get(phase, 0.0) + t
            )
            self.kernel_barriers += 1
        if self.obs.enabled:
            start = self.tracer.now()
            step = rec.step if rec is not None else None
            for rank, seconds in enumerate(times):
                self.obs.registry.observe(
                    series.RANK_COMPUTE_SECONDS, seconds, rank=str(rank)
                )
                self.obs.point(
                    "rank_kernel",
                    "kernel",
                    start,
                    step=step,
                    rank=rank,
                    attrs={
                        "modeled_seconds": seconds,
                        "tier": self.tier.name,
                    },
                )
        self.tracer.add_compute(t)
        return t

    def _mitigated_barrier(self, times: List[float]) -> float:
        """Deadline-driven straggler mitigation for one superstep barrier.

        Feeds the barrier's metered times into the health state machine,
        then — for flagged ranks whose work was captured before the
        superstep — *actually re-executes* the rank's kernel on private
        copies via the backend and verifies the backup's DV is bitwise
        identical to the straggler's own outcome.  The mitigated rank
        finishes at ``deadline + (1 + overhead) x reference-speed
        duration`` (the supervisor notices the miss at the deadline and
        the backup runs on a healthy reference-speed slot; whichever
        copy finishes first wins).  Results never change — speed only
        affects the modeled clock — so mitigated runs keep closeness
        bitwise-identical to the fault-free run.
        """
        monitor = self.health
        spec = self._spec_context
        assert monitor is not None and spec is not None
        flagged = monitor.observe_superstep(
            times, [w.unacked_row_count() for w in self.workers]
        )
        if not times:
            return 0.0
        effective = list(times)
        deadline = monitor.last_deadline
        if monitor.policy.speculate and deadline > 0.0:
            for r in flagged:
                captured = spec.get(r)
                if captured is None:
                    continue
                task, dv_copy, apsp_copy = captured
                self.backend.run_speculative(task, dv_copy, apsp_copy)
                w = self.workers[r]
                if not np.array_equal(dv_copy, w.dv):
                    raise RuntimeSimulationError(
                        f"speculative re-execution of rank {r} diverged"
                        " from the straggler's own superstep result"
                    )
                ref_speed = (
                    self._pre_chaos_speeds[r]
                    if self._pre_chaos_speeds is not None
                    else w.speed
                )
                backup = times[r] * (w.speed / ref_speed) * (
                    1.0 + monitor.policy.speculation_overhead
                )
                mitigated = min(times[r], deadline + backup)
                if mitigated < times[r]:
                    monitor.speculations += 1
                    monitor.speculation_saved_seconds += times[r] - mitigated
                    effective[r] = mitigated
        rec = self.tracer._open
        if rec is not None and monitor.speculations:
            rec.info["speculations"] = float(monitor.speculations)
        return max(effective)

    def charge_serial_compute(self, seconds: float) -> None:
        """Charge compute that runs on one processor (e.g. coordination)."""
        self.tracer.add_compute(seconds)

    def charge_comm_words(
        self, messages: Sequence[Tuple[Rank, Rank, int]]
    ) -> float:
        """Price a batch of point-to-point messages given in *words*."""
        priced = [
            (s, d, w * self.logp.word_bytes) for s, d, w in messages if s != d
        ]
        t = self.schedule.exchange_time(priced, self.logp)
        self.tracer.add_comm(
            t, messages=len(priced), words=sum(w for _s, _d, w in messages)
        )
        return t

    # ------------------------------------------------------------------
    # DD phase
    # ------------------------------------------------------------------
    def decompose(self, partitioner: Partitioner) -> Partition:
        """Partition the graph and install local sub-graphs on the workers.

        ParMETIS in the paper is a *parallel* partitioner, so the modeled
        partitioning compute is divided across the processors.
        """
        rec = self.tracer.begin("domain_decomposition")
        part = partitioner.partition(self.graph, self.nprocs)
        part.validate_against(self.graph)
        self.partition = part
        n, m = self.graph.num_vertices, self.graph.num_edges
        self.tracer.add_compute(
            self.cost.partition_time(n, 2 * m, self.nprocs) / self.nprocs
        )
        self.install_partition(part)
        # distributing the sub-graphs: each edge/vertex shipped once
        dist_msgs = []
        for r in range(self.nprocs):
            w = self.workers[r]
            words = w.n_local + 3 * w.local_graph.num_edges
            dist_msgs.append((0, r, words))
        self.charge_comm_words(dist_msgs)
        rec.info["edge_cut"] = float(
            sum(len(d) for wk in self.workers for d in wk.cut_adj.values()) / 2
        )
        self.tracer.end()
        return part

    def install_partition(
        self,
        part: Partition,
        *,
        seed_rows: Optional[Dict[VertexId, FloatArray]] = None,
    ) -> None:
        """(Re)build every worker's local sub-graph from ``part``.

        ``seed_rows`` routes migrated DV rows to their new owners
        (Repartition-S anytime reuse).
        """
        self.partition = part
        owner = part.assignment
        blocks = part.blocks()
        for r in range(self.nprocs):
            sub = extract_local_subgraph(self.graph, blocks[r], owner, r)
            rows = None
            if seed_rows:
                rows = {
                    v: seed_rows[v] for v in blocks[r] if v in seed_rows
                }
            self.workers[r].load_subgraph(sub, seed_rows=rows)
        self._wire_subscriptions()

    def _wire_subscriptions(self) -> None:
        """Every worker subscribes to the owners of its external boundary."""
        for w in self.workers:
            for x in w.cut_by_ext:
                self.workers[self.owner_of(x)].subscribe(x, w.rank)

    # ------------------------------------------------------------------
    # IA phase
    # ------------------------------------------------------------------
    def run_initial_approximation(self) -> None:
        self.tracer.begin("initial_approximation")
        self.backend.run_ia(self.workers)
        self.sync_compute()
        self.tracer.end()

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def attach_chaos(self, injector: "FaultInjector") -> None:
        """Route the boundary exchange through ``injector`` and apply its
        straggler slowdowns.  Detach with :meth:`detach_chaos`."""
        if injector.nprocs != self.nprocs:
            raise ConfigurationError(
                f"fault injector built for {injector.nprocs} workers,"
                f" cluster has {self.nprocs}"
            )
        self.chaos = injector
        self._pre_chaos_speeds = [w.speed for w in self.workers]
        for rank, factor in injector.plan.stragglers:
            self.workers[rank].speed /= factor

    def detach_chaos(self) -> None:
        """Restore the reliable network and original worker speeds.

        Any rows still awaiting acknowledgement move back to the pending
        queues so the reliable exchange path completes their delivery.
        """
        self.chaos = None
        if self._pre_chaos_speeds is not None:
            for w, sp in zip(self.workers, self._pre_chaos_speeds):
                w.speed = sp
            self._pre_chaos_speeds = None
        for w in self.workers:
            w.flush_unacked()

    # ------------------------------------------------------------------
    # health / self-healing
    # ------------------------------------------------------------------
    def attach_health(self, monitor: "HealthMonitor") -> None:
        """Drive the per-rank health state machine from superstep barriers
        and enable deadline-driven straggler mitigation + modeled retry
        backoff.  Detach with :meth:`detach_health`."""
        if monitor.nprocs != self.nprocs:
            raise ConfigurationError(
                f"health monitor built for {monitor.nprocs} workers,"
                f" cluster has {self.nprocs}"
            )
        self.health = monitor

    def detach_health(self) -> None:
        self.health = None
        self._spec_context = None

    # ------------------------------------------------------------------
    # RC-step primitives
    # ------------------------------------------------------------------
    def exchange_boundary(self) -> int:
        """Personalized all-to-all exchange of queued boundary-DV rows.

        Returns the number of DV rows delivered.  Prices the exchange under
        the configured schedule and charges pack/unpack compute.  With a
        fault injector attached, the exchange runs the sequenced
        ack/retry protocol instead (see :meth:`_exchange_with_chaos`).
        """
        if self.chaos is not None:
            return self._exchange_with_chaos()
        payloads: Dict[Tuple[Rank, Rank], DeltaRows] = {}
        messages: List[Tuple[Rank, Rank, int]] = []
        delivered = 0
        for src in range(self.nprocs):
            w = self.workers[src]
            for dst in range(self.nprocs):
                if dst == src:
                    continue
                rows = w.build_payload(dst)
                if not rows:
                    continue
                payloads[(src, dst)] = rows
                messages.append((src, dst, rows.words()))
                self._count_boundary(rows)
                delivered += len(rows)
        self.charge_comm_words(messages)
        for (src, dst), rows in payloads.items():
            self.workers[dst].receive_rows(rows)
        return delivered

    def _count_boundary(self, payload: DeltaRows, copies: int = 1) -> None:
        """Accumulate bench counters for one boundary payload on the wire."""
        self.boundary_words += copies * payload.words()
        self.boundary_rows_dense += copies * len(payload.dense)
        self.boundary_rows_sparse += copies * len(payload.sparse)

    def _exchange_with_chaos(self) -> int:
        """Sequenced, acknowledged boundary exchange under fault injection.

        Every packet carries a per-channel sequence number; the sender
        keeps it buffered until the destination's ack arrives, so the RC
        fixed-point vote cannot falsely converge while an update sits
        undelivered.  Lost packets (and lost acks) are retried at the next
        exchange; duplicates are deduplicated by sequence number.  All
        traffic — including retries, duplicates and the 1-word acks — is
        priced by the LogP schedule.
        """
        chaos = self.chaos
        assert chaos is not None
        max_retries = chaos.plan.max_retries
        messages: List[Tuple[Rank, Rank, int]] = []
        #: (src, dst, seq, payload, copies delivered on the wire)
        deliveries: List[Tuple[Rank, Rank, int, DeltaRows, int]] = []
        retries = 0
        #: modeled seconds of exponential-backoff delay before retransmits
        backoff = 0.0
        for src in range(self.nprocs):
            w = self.workers[src]
            for dst in range(self.nprocs):
                if dst == src:
                    continue
                for seq, rows, is_retry in w.outbound_packets(
                    dst, max_retries
                ):
                    if is_retry:
                        retries += 1
                        chaos.record_retry(src, dst, seq)
                        if self.health is not None:
                            delay = self.health.backoff_delay(
                                w.attempt_count(dst, seq)
                            )
                            backoff += delay
                            chaos.record_backoff(src, dst, seq, delay)
                    outcome = chaos.send_outcome(src, dst, seq)
                    if outcome == "send_failure":
                        continue  # never hit the wire; retried next step
                    words = rows.words()
                    copies = 2 if outcome == "duplicated" else 1
                    for _ in range(copies):
                        messages.append((src, dst, words))
                    self._count_boundary(rows, copies)
                    if outcome == "lost":
                        continue
                    deliveries.append((src, dst, seq, rows, copies))
        delivered = 0
        acks: List[Tuple[Rank, Rank, int]] = []
        for src, dst, seq, rows, copies in deliveries:
            if self.workers[dst].receive_packet(src, seq, rows):
                delivered += len(rows)
            for _ in range(copies):
                acks.append((dst, src, 1))  # 1-word ack on the wire
                if not chaos.ack_lost(src, dst, seq):
                    self.workers[src].ack_packet(dst, seq)
        self.charge_comm_words(messages + acks)
        if backoff:
            # backoff is wait time on the modeled clock, priced like comm
            self.tracer.add_comm(backoff)
        rec = self.tracer._open
        if rec is not None:
            if retries:
                rec.info["retries"] = rec.info.get("retries", 0.0) + retries
            if backoff:
                rec.info["backoff_seconds"] = (
                    rec.info.get("backoff_seconds", 0.0) + backoff
                )
        return delivered

    def relax_and_propagate(self) -> bool:
        """Cut-edge relaxation + local min-plus propagation on all workers.

        With a health monitor attached this is the *mitigated* superstep:
        before running the backend, each known-slow rank's task and array
        state are captured so :meth:`_mitigated_barrier` can speculatively
        re-execute its kernel if the rank misses the deadline.  Only this
        superstep barrier is mitigated — the IA phase and recovery
        barriers run unmodified (one-shot phases, no deadline baseline).
        """
        if self.health is not None:
            ctx: SpecContext = {}
            pre = self._pre_chaos_speeds
            if pre is not None and self.health.policy.speculate:
                for r, w in enumerate(self.workers):
                    if w.speed < pre[r]:
                        ctx[r] = (
                            w.peek_superstep_task(),
                            w.dv.copy(),
                            w.local_apsp.copy(),
                        )
            # an empty dict still arms the barrier: the state machine must
            # observe every superstep even when nothing can be speculated
            self._spec_context = ctx
        try:
            changed = self.backend.relax_and_propagate(self.workers)
            self.sync_compute()
        finally:
            self._spec_context = None
        return changed

    def close(self) -> None:
        """Release backend resources (shared-memory segments).

        Idempotent: safe to call any number of times, including via the
        context-manager protocol *and* explicitly.  Abandoned clusters
        release the same resources when garbage collected; explicit
        close is for long-lived processes (benchmarks, services) that
        churn through many clusters — and for ``finally`` paths that
        must not leak shm segments when a run raises mid-phase.
        """
        if self._closed:
            return
        self._closed = True
        self.backend.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability sampling
    # ------------------------------------------------------------------
    def observe_superstep(self, step: int) -> None:
        """Sample the well-known metric series after one completed RC
        superstep, and run any attached convergence probes.

        Pure observation — touches only the observability hub, never the
        modeled clock or algorithm state, so results are bitwise
        identical with observers on or off.
        """
        if not self.obs.enabled:
            return
        self.refresh_metrics()
        self.obs.sample_counters(
            series.COUNTER_TRACK_SERIES, self.tracer.now(), step=step
        )
        self.obs.sample_probes(self, step)

    def refresh_metrics(self) -> None:
        """Copy the cluster's current totals into the metrics registry.

        Runs after every superstep and once more at engine close, so the
        final flush reflects charges made after the last superstep (the
        convergence vote's all-reduce words, recovery traffic).
        """
        if not self.obs.enabled:
            return
        self.collect_signals(self.obs.registry)

    def collect_signals(self, reg: "series.MetricsRegistry") -> None:
        """Sample the well-known series into ``reg``, unconditionally.

        The observer path (:meth:`refresh_metrics`) and the strategy-
        policy path (a *private* registry owned by the policy strategy)
        share this one collector, so policy decisions see exactly the
        gauges the obs layer exports — whether or not observers are
        attached — and the non-perturbation invariant holds for
        policy-driven runs.
        """
        from .metrics import snapshot_load

        reg.counter_set(series.WIRE_WORDS, float(self.tracer.total_words))
        reg.counter_set(
            series.BOUNDARY_WORDS,
            float(self.boundary_words),
            format=self.wire_format,
        )
        reg.counter_set(
            series.BOUNDARY_ROWS,
            float(self.boundary_rows_dense),
            encoding="dense",
        )
        reg.counter_set(
            series.BOUNDARY_ROWS,
            float(self.boundary_rows_sparse),
            encoding="sparse",
        )
        rows_total = self.boundary_rows_dense + self.boundary_rows_sparse
        if rows_total:
            reg.gauge(
                series.DELTA_HIT_RATE,
                self.boundary_rows_sparse / rows_total,
            )
        for w in self.workers:
            reg.gauge(
                series.PENDING_ROWS,
                float(w.pending_row_count()),
                rank=str(w.rank),
            )
            reg.gauge(
                series.UNACKED_ROWS,
                float(w.unacked_row_count()),
                rank=str(w.rank),
            )
        if self.chaos is not None:
            stats = self.chaos.stats
            reg.counter_set(series.RETRIES, float(stats.retries))
            reg.counter_set(series.FAULTS, float(stats.faults_injected))
        if self.health is not None:
            mon = self.health
            for w in self.workers:
                reg.gauge(
                    series.HEALTH_STATE,
                    float(mon.state_value(w.rank)),
                    rank=str(w.rank),
                )
            reg.counter_set(
                series.MISSED_DEADLINES, float(mon.missed_deadlines)
            )
            reg.counter_set(series.SPECULATIONS, float(mon.speculations))
            reg.counter_set(series.BACKOFF_SECONDS, mon.backoff_seconds)
        load = snapshot_load(self)
        reg.gauge(series.LOAD_VERTEX_IMBALANCE, load.vertex_imbalance)
        reg.gauge(series.LOAD_CUT_IMBALANCE, load.cut_imbalance)
        reg.gauge(series.ACTIVE_WORKERS, float(load.active_workers))
        reg.gauge(series.GRAPH_VERTICES, float(self.graph.num_vertices))

    def any_pending(self) -> bool:
        """Convergence vote (modeled as a tiny all-reduce)."""
        self.charge_comm_words([(r, 0, 1) for r in range(1, self.nprocs)])
        return any(w.has_pending() for w in self.workers)

    # ------------------------------------------------------------------
    # broadcasts and column maintenance
    # ------------------------------------------------------------------
    def broadcast_row(self, v: VertexId) -> FloatArray:
        """Owner broadcasts ``v``'s DV row to all ranks (binomial tree)."""
        row = self.worker_owning(v).dv_row(v)
        words = dense_row_words(row.size)
        t = tree_broadcast_time(
            words * self.logp.word_bytes, self.nprocs, self.logp
        )
        self.tracer.add_comm(t, messages=self.nprocs - 1, words=words)
        return row

    def add_vertex_columns(self, vertices: Sequence[VertexId]) -> None:
        """Register new vertices and grow every worker's DV (Fig. 3 l.11-18)."""
        for v in vertices:
            self.index.add(v)
        n = len(self.index)
        for w in self.workers:
            w.grow_columns(n)

    @property
    def n_columns(self) -> int:
        return len(self.index)

    # ------------------------------------------------------------------
    # result collection
    # ------------------------------------------------------------------
    def gather_distance_matrix(self) -> Tuple[FloatArray, List[VertexId]]:
        """Assemble the full distance matrix (rows/cols in index order).

        Models the result gather as each worker shipping its rows to rank 0.
        """
        n = self.n_columns
        out = np.full((n, n), np.inf, dtype=np.float64)
        messages = []
        for w in self.workers:
            for v in w.owned:
                out[self.index.column(v)] = w.dv[w.row_of[v]]
            if w.rank != 0:
                messages.append(
                    (w.rank, 0, dv_payload_words(w.n_local, n))
                )
        self.charge_comm_words(messages)
        return out, list(self.index.ids)

    def distance_rows(self) -> Dict[VertexId, FloatArray]:
        """Current DV row (copy) of every vertex, keyed by vertex id."""
        return {
            v: w.dv[w.row_of[v]].copy()
            for w in self.workers
            for v in w.owned
        }

    def converged_vote(self) -> bool:
        return not any(w.has_pending() for w in self.workers)

    def load_report(self) -> Dict[str, List[float]]:
        """Per-worker load statistics (vertices, cut edges, compute ops)."""
        return {
            "vertices": [float(w.n_local) for w in self.workers],
            "cut_edges": [
                float(sum(len(d) for d in w.cut_adj.values()))
                for w in self.workers
            ],
        }
