"""Load-imbalance metrics over a running cluster.

The paper's motivation is that vertex additions "skew the initial graph
partitions, leading to load imbalance issues": these helpers quantify the
skew both in vertices (computation load) and cut edges (communication
load), per §IV.C.1.a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..partition.metrics import imbalance
from .cluster import Cluster

__all__ = ["LoadSnapshot", "snapshot_load"]


@dataclass(frozen=True)
class LoadSnapshot:
    """Per-worker load at one instant."""

    vertices: List[int]
    cut_edges: List[int]

    @property
    def vertex_imbalance(self) -> float:
        """max/mean - 1 over per-worker vertex counts (computation load)."""
        return imbalance([float(x) for x in self.vertices])

    @property
    def cut_imbalance(self) -> float:
        """max/mean - 1 over per-worker cut degrees (communication load)."""
        return imbalance([float(x) for x in self.cut_edges])

    @property
    def total_cut_edges(self) -> int:
        """Global cut-edge count (each edge counted once)."""
        return sum(self.cut_edges) // 2

    @property
    def active_workers(self) -> int:
        """Workers owning at least one vertex (drops below P after a
        ``redistribute`` recovery retires a rank)."""
        return sum(1 for n in self.vertices if n > 0)


def snapshot_load(cluster: Cluster) -> LoadSnapshot:
    """Capture the current per-worker load of ``cluster``."""
    return LoadSnapshot(
        vertices=[w.n_local for w in cluster.workers],
        cut_edges=[
            sum(len(d) for d in w.cut_adj.values()) for w in cluster.workers
        ],
    )
