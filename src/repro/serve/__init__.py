"""repro.serve — the streaming update service and session facade.

The long-lived counterpart of the one-shot :func:`repro.closeness`
API: a :class:`Session` owns an engine, an :class:`UpdateService`
batches a continuous change feed through it (admission policies), and
a signal-driven strategy policy picks the dynamic strategy per batch.
"""

from .admission import (
    AdmissionPolicy,
    DeadlineAdmission,
    HybridAdmission,
    PendingChange,
    SizeAdmission,
)
from .service import (
    ServeSummary,
    ServeTick,
    UpdateService,
    batch_to_events,
    events_to_batch,
)
from .session import Session, session
from .traces import (
    TRACE_SHAPES,
    ChurnTrace,
    load_change_trace,
    save_change_trace,
    synthesize_churn,
)

__all__ = [
    "AdmissionPolicy",
    "ChurnTrace",
    "DeadlineAdmission",
    "HybridAdmission",
    "PendingChange",
    "ServeSummary",
    "ServeTick",
    "Session",
    "SizeAdmission",
    "TRACE_SHAPES",
    "UpdateService",
    "batch_to_events",
    "events_to_batch",
    "load_change_trace",
    "save_change_trace",
    "session",
    "synthesize_churn",
]
