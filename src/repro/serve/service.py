"""The long-lived streaming update service.

``UpdateService`` wraps an :class:`AnytimeAnywhereCloseness` engine in
an ingest loop that never "finishes": change events are fed
continuously, an :class:`~repro.serve.admission.AdmissionPolicy` forms
batches from the queue, and each batch runs through the engine for one
paced RC step (``step_budget=1``) under the configured strategy — by
default ``"auto"``, the policy-driven adapter that picks RoundRobin-PS
/ CutEdge-PS / Repartition-S per batch from live signals.

Pacing is entirely on the modeled clock: a service *tick* is one
admission decision plus one RC step, and every figure the service
reports (tick records, summaries) derives from modeled quantities, so
serve runs pin byte-for-byte across repeats and backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..core.engine import AnytimeAnywhereCloseness, RunResult
from ..core.strategies import (
    CompositeStrategy,
    DynamicStrategy,
    PolicyDecision,
    PolicyDrivenStrategy,
)
from ..errors import ConfigurationError
from ..graph.changes import (
    ChangeBatch,
    ChangeEvent,
    ChangeStream,
    EdgeAddition,
    EdgeDeletion,
    EdgeReweight,
    VertexAddition,
    VertexDeletion,
)
from ..obs.registry import DELTA_HIT_RATE, HEALTH_STATE, SLO_VIOLATIONS, SignalView
from ..obs.slo import SLOAlert, SLOEvaluator, SLOSample, SLOSpec
from .admission import AdmissionPolicy, HybridAdmission, PendingChange

__all__ = ["ServeTick", "ServeSummary", "UpdateService", "batch_to_events"]


def batch_to_events(batch: ChangeBatch) -> List[ChangeEvent]:
    """Flatten a batch into its events, in safe application order."""
    out: List[ChangeEvent] = []
    out.extend(batch.vertex_additions)
    out.extend(batch.edge_additions)
    out.extend(batch.edge_reweights)
    out.extend(batch.edge_deletions)
    out.extend(batch.vertex_deletions)
    return out


def events_to_batch(events: Iterable[ChangeEvent]) -> ChangeBatch:
    """Bucket a sequence of events into one :class:`ChangeBatch`.

    Arrival order is preserved within each bucket; cross-bucket order is
    the batch's safe application order (additions before deletions).
    """
    batch = ChangeBatch()
    for ev in events:
        if isinstance(ev, VertexAddition):
            batch.vertex_additions.append(ev)
        elif isinstance(ev, EdgeAddition):
            batch.edge_additions.append(ev)
        elif isinstance(ev, EdgeReweight):
            batch.edge_reweights.append(ev)
        elif isinstance(ev, EdgeDeletion):
            batch.edge_deletions.append(ev)
        elif isinstance(ev, VertexDeletion):
            batch.vertex_deletions.append(ev)
        else:
            raise ConfigurationError(
                f"not a change event: {type(ev).__name__}"
            )
    return batch


@dataclass(frozen=True)
class ServeTick:
    """One service tick: admission decision + one paced RC step."""

    tick: int
    #: events admitted into this tick's batch (0 = refinement only)
    admitted: int
    #: strategy the batch ran under ("" when no batch was admitted)
    strategy: str
    #: policy reason token ("" for fixed strategies / no batch)
    reason: str
    rc_steps: int
    modeled_seconds: float
    #: events still queued after this tick
    pending: int
    converged: bool

    def line(self) -> str:
        """Canonical one-line form (pinned byte-for-byte in CI)."""
        return (
            f"tick={self.tick} admitted={self.admitted}"
            f" strategy={self.strategy or '-'} reason={self.reason or '-'}"
            f" rc_steps={self.rc_steps} pending={self.pending}"
            f" modeled={self.modeled_seconds:.6f}"
            f" converged={str(self.converged).lower()}"
        )


@dataclass(frozen=True)
class ServeSummary:
    """Periodic ``repro report``-style digest of the serve loop."""

    tick: int
    modeled_seconds: float
    num_vertices: int
    closeness_mean: float
    events_admitted: int
    batches: int
    rc_steps: int
    pending: int
    #: batches per chosen strategy so far (policy-driven runs)
    strategy_counts: Dict[str, int]

    def lines(self) -> List[str]:
        chosen = " ".join(
            f"{name}={count}"
            for name, count in sorted(self.strategy_counts.items())
        )
        return [
            f"serve summary @ tick {self.tick}",
            f"  modeled {self.modeled_seconds:.4f}s"
            f"  rc_steps {self.rc_steps}  batches {self.batches}",
            f"  events admitted {self.events_admitted}"
            f"  pending {self.pending}",
            f"  vertices {self.num_vertices}"
            f"  closeness_mean {self.closeness_mean:.6f}",
            f"  strategies {chosen or '-'}",
        ]


class UpdateService:
    """Streaming ingest loop over a set-up engine.

    Parameters
    ----------
    engine:
        The engine to serve; :meth:`~AnytimeAnywhereCloseness.setup` is
        called if it has not run yet.
    admission:
        Batching policy for the change feed (default
        :class:`HybridAdmission`).
    strategy:
        Strategy name or instance applied to admitted batches.  The
        name is resolved **once** so per-strategy state (round-robin
        offsets, policy decision traces) persists across batches.
        Default ``"auto"`` (signal-driven policy selection).
    summary_interval:
        Emit a :class:`ServeSummary` every this many ticks (0 = never).
    slo:
        Serving objectives: a sequence of
        :class:`~repro.obs.slo.SLOSpec` (or a prebuilt
        :class:`~repro.obs.slo.SLOEvaluator`) judged deterministically
        at every tick.  State transitions accumulate in
        :attr:`slo_alerts` and flow through the engine's observability
        hub as ``alert`` trace events.  Evaluation is read-only — serve
        results stay bitwise-identical with SLOs on or off.
    """

    def __init__(
        self,
        engine: AnytimeAnywhereCloseness,
        *,
        admission: Optional[AdmissionPolicy] = None,
        strategy: Union[str, DynamicStrategy] = "auto",
        summary_interval: int = 0,
        slo: Union[Sequence[SLOSpec], SLOEvaluator, None] = None,
    ) -> None:
        if summary_interval < 0:
            raise ConfigurationError("summary_interval must be >= 0")
        self.engine = engine
        if engine.cluster is None:
            engine.setup()
        self.admission: AdmissionPolicy = admission or HybridAdmission()
        resolved = engine.resolve_strategy(strategy)
        if resolved is None:
            raise ConfigurationError("the serve loop needs a strategy")
        # report fixed strategies under their requested registry name
        # (resolution may wrap them, e.g. in a CompositeStrategy)
        self._strategy_label = (
            strategy if isinstance(strategy, str) else resolved.name
        )
        # mixed add/delete batches are the serve norm: additions-only
        # strategies (e.g. a fixed Repartition-S) must still route
        # deletions through the composite's deletion paths
        if not isinstance(
            resolved, (CompositeStrategy, PolicyDrivenStrategy)
        ):
            resolved = CompositeStrategy(resolved)
        self.strategy: DynamicStrategy = resolved
        self.summary_interval = summary_interval
        self._pending: List[PendingChange] = []
        self.tick = 0
        #: per-tick records, in order (the canonical serve trace)
        self.ticks: List[ServeTick] = []
        self.summaries: List[ServeSummary] = []
        self.events_admitted = 0
        self.batches_formed = 0
        self.rc_steps_total = 0
        self._strategy_counts: Dict[str, int] = {}
        if slo is None or isinstance(slo, SLOEvaluator):
            self.slo: Optional[SLOEvaluator] = slo
        else:
            self.slo = SLOEvaluator(slo) if slo else None
        #: every SLO state transition so far, in emission order
        self.slo_alerts: List[SLOAlert] = []

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def feed(
        self, changes: Union[ChangeBatch, Iterable[ChangeEvent]]
    ) -> None:
        """Queue change events, stamped with the current tick and clock."""
        events = (
            batch_to_events(changes)
            if isinstance(changes, ChangeBatch)
            else list(changes)
        )
        now = self.engine.modeled_seconds
        for ev in events:
            self._pending.append(PendingChange(ev, self.tick, now))

    @property
    def pending_events(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # the serve loop
    # ------------------------------------------------------------------
    def step(self) -> ServeTick:
        """One service tick: admit, run one paced RC step, record."""
        admitted = self.admission.admit(
            tuple(self._pending), self.tick, self.engine.modeled_seconds
        )
        admitted = max(0, min(int(admitted), len(self._pending)))
        return self._advance(admitted, reason_override=None)

    def flush(self) -> ServeTick:
        """Force-admit the whole queue, bypassing the admission policy."""
        return self._advance(len(self._pending), reason_override="flush")

    def drain(self) -> RunResult:
        """Flush everything queued, then run the engine to convergence."""
        while self._pending:
            self.flush()
        final = self.engine.run(strategy=self.strategy)
        self.rc_steps_total += final.rc_steps
        return final

    def result(self) -> RunResult:
        """Alias of :meth:`drain` (the session facade's ``.result()``)."""
        return self.drain()

    # ------------------------------------------------------------------
    def _advance(
        self, admitted: int, reason_override: Optional[str]
    ) -> ServeTick:
        batch = (
            events_to_batch(pc.event for pc in self._pending[:admitted])
            if admitted
            else None
        )
        clock_before = self.engine.modeled_seconds
        decisions_before = len(self.policy_decisions)
        if batch is not None:
            stream = ChangeStream({self.engine.next_step: batch})
            result = self.engine.run(
                changes=stream, strategy=self.strategy, step_budget=1
            )
        else:
            # no batch: one refinement step keeps queued rows draining
            result = self.engine.run(strategy=self.strategy, step_budget=1)
        strategy_name = ""
        reason = ""
        if batch is not None:
            strategy_name = self._strategy_label
            decisions = self.policy_decisions
            if len(decisions) > decisions_before:
                last = decisions[-1]
                strategy_name = last.strategy
                reason = last.reason
            if reason_override is not None:
                reason = reason_override
            del self._pending[:admitted]
            self.events_admitted += admitted
            self.batches_formed += 1
            self._strategy_counts[strategy_name] = (
                self._strategy_counts.get(strategy_name, 0) + 1
            )
        record = ServeTick(
            tick=self.tick,
            admitted=admitted,
            strategy=strategy_name,
            reason=reason,
            rc_steps=result.rc_steps,
            modeled_seconds=result.modeled_seconds,
            pending=len(self._pending),
            converged=result.converged,
        )
        self.ticks.append(record)
        self.rc_steps_total += result.rc_steps
        if self.slo is not None:
            self._evaluate_slo(record, result, clock_before)
        self.tick += 1
        if self.summary_interval and self.tick % self.summary_interval == 0:
            self.summaries.append(self.summarize(result))
        return record

    def _evaluate_slo(
        self, record: ServeTick, result: RunResult, clock_before: float
    ) -> None:
        """Judge one tick against the loaded SLOs (read-only).

        Degraded ticks are first-class inputs — they burn the
        degraded-tick budget instead of crashing the evaluator — and
        every extracted signal is a modeled quantity, so the alert
        stream pins byte-for-byte across repeats and backends.
        """
        evaluator = self.slo
        assert evaluator is not None
        signals = self.engine.signals()
        probe = signals.sample()
        health = signals.per_rank(HEALTH_STATE)
        hit_rate = signals.get(DELTA_HIT_RATE, default=-1.0)
        sample = SLOSample(
            tick=record.tick,
            t=result.modeled_seconds,
            tick_seconds=result.modeled_seconds - clock_before,
            residual_max=probe.get("residual_max"),
            delta_hit_rate=None if hit_rate < 0.0 else hit_rate,
            degraded=result.degraded,
            rank_health_max=max(health.values()) if health else None,
        )
        alerts = evaluator.observe(sample)
        if not alerts:
            return
        self.slo_alerts.extend(alerts)
        hub = self.engine.obs
        if hub.enabled:
            for alert in alerts:
                hub.emit(
                    "alert",
                    "slo",
                    alert.slo,
                    alert.t,
                    step=alert.tick,
                    attrs=alert.attrs(),
                )
                if alert.state == "firing":
                    hub.registry.inc(SLO_VIOLATIONS, slo=alert.slo)

    def summarize(self, result: RunResult) -> ServeSummary:
        """Digest ``result`` + loop counters into a :class:`ServeSummary`."""
        closeness = result.closeness
        mean = (
            sum(closeness.values()) / len(closeness) if closeness else 0.0
        )
        return ServeSummary(
            tick=self.tick,
            modeled_seconds=result.modeled_seconds,
            num_vertices=len(closeness),
            closeness_mean=mean,
            events_admitted=self.events_admitted,
            batches=self.batches_formed,
            rc_steps=self.rc_steps_total,
            pending=len(self._pending),
            strategy_counts=dict(sorted(self._strategy_counts.items())),
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def signals(self) -> SignalView:
        """Live run signals (read-only), as the strategy policy sees them."""
        return self.engine.signals()

    @property
    def policy_decisions(self) -> List[PolicyDecision]:
        """Decision trace of a policy-driven strategy (else empty)."""
        if isinstance(self.strategy, PolicyDrivenStrategy):
            return list(self.strategy.decisions)
        return []
