"""The session facade: engine lifecycle + serve loop in one handle.

``repro.session(graph, config)`` is the primary public entry point: a
context manager bundling engine construction, setup (DD + IA), the
streaming serve loop, anytime reads, and teardown::

    import repro

    with repro.session(g, repro.AnytimeConfig(nprocs=8)) as s:
        s.feed([VertexAddition(100, ((3, 1.0),))])
        s.step()                      # one admission + paced RC step
        s.signals.vertex_imbalance    # live read, never perturbs
        result = s.result()           # drain + run to convergence

``repro.closeness()`` is the one-shot convenience built on top: open a
session, run to convergence, close.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..core.config import AnytimeConfig
from ..core.engine import AnytimeAnywhereCloseness, RunResult
from ..core.strategies import DynamicStrategy
from ..graph.changes import ChangeBatch, ChangeEvent
from ..graph.graph import Graph
from ..obs.registry import SignalView
from ..obs.slo import SLOEvaluator, SLOSpec
from .admission import AdmissionPolicy
from .service import ServeTick, UpdateService

__all__ = ["Session", "session"]


class Session:
    """A live analysis session: engine + streaming update service.

    The engine is set up lazily on first use (entering the context
    manager sets it up eagerly), and the serve loop is created on the
    first :meth:`feed` / :meth:`step`, so a session used only for
    :meth:`run` behaves exactly like a bare engine.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[AnytimeConfig] = None,
        *,
        admission: Optional[AdmissionPolicy] = None,
        strategy: Union[str, DynamicStrategy] = "auto",
        summary_interval: int = 0,
        slo: Union[Sequence[SLOSpec], SLOEvaluator, None] = None,
    ) -> None:
        self.engine = AnytimeAnywhereCloseness(graph, config)
        self._admission = admission
        self._strategy = strategy
        self._summary_interval = summary_interval
        self._slo = slo
        self._service: Optional[UpdateService] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self) -> "Session":
        """Run setup (DD + IA) if it has not run yet; idempotent."""
        if self.engine.cluster is None:
            self.engine.setup()
        return self

    def close(self) -> None:
        """Release backend resources and flush exporters; idempotent."""
        self.engine.close()

    def __enter__(self) -> "Session":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def service(self) -> UpdateService:
        """The streaming update service (created on first access)."""
        if self._service is None:
            self.open()
            self._service = UpdateService(
                self.engine,
                admission=self._admission,
                strategy=self._strategy,
                summary_interval=self._summary_interval,
                slo=self._slo,
            )
        return self._service

    # ------------------------------------------------------------------
    # the streaming API
    # ------------------------------------------------------------------
    def feed(
        self, changes: Union[ChangeBatch, Iterable[ChangeEvent]]
    ) -> None:
        """Queue change events (a batch or an iterable of events)."""
        self.service.feed(changes)

    def step(self) -> ServeTick:
        """One service tick: admission decision + one paced RC step."""
        return self.service.step()

    def result(self) -> RunResult:
        """Drain the queue and run to convergence; the final answer."""
        return self.service.drain()

    @property
    def signals(self) -> SignalView:
        """Live run signals (read-only; never perturbs the run)."""
        self.open()
        return self.engine.signals()

    # ------------------------------------------------------------------
    # the one-shot API (what repro.closeness builds on)
    # ------------------------------------------------------------------
    def run(self, **kwargs: object) -> RunResult:
        """Direct :meth:`AnytimeAnywhereCloseness.run` passthrough.

        Bypasses the serve loop: no admission, no pacing — identical
        call sequence to driving the engine by hand, which is what
        keeps ``repro.closeness()`` byte-identical to the pre-session
        facade.
        """
        self.open()
        return self.engine.run(**kwargs)  # type: ignore[arg-type]


def session(
    graph: Graph,
    config: Optional[AnytimeConfig] = None,
    *,
    admission: Optional[AdmissionPolicy] = None,
    strategy: Union[str, DynamicStrategy] = "auto",
    summary_interval: int = 0,
    slo: Union[Sequence[SLOSpec], SLOEvaluator, None] = None,
) -> Session:
    """Open a :class:`Session` over ``graph`` (the primary entry point)."""
    return Session(
        graph,
        config,
        admission=admission,
        strategy=strategy,
        summary_interval=summary_interval,
        slo=slo,
    )
