"""Admission policies: batching a continuous change feed.

A long-lived service does not receive :class:`ChangeBatch` objects — it
receives a *feed* of individual change events.  An admission policy
decides, at each service tick, how many of the queued events to admit
as the next batch: by count (:class:`SizeAdmission`), by how long the
oldest event has waited (:class:`DeadlineAdmission`), or both
(:class:`HybridAdmission`).

Determinism: deadlines are expressed in service ticks and modeled
seconds — never the host clock — so the same feed always batches the
same way (repro-lint RPL003/RPL007 stay green by construction).
Admission always takes a *prefix* of the queue: arrival order is
preserved, which keeps intra-feed references valid (an event may refer
to vertices introduced earlier in the feed — they are either already
applied or in the same batch).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..graph.changes import ChangeEvent

__all__ = [
    "PendingChange",
    "AdmissionPolicy",
    "SizeAdmission",
    "DeadlineAdmission",
    "HybridAdmission",
]


@dataclass(frozen=True)
class PendingChange:
    """A queued change event, stamped with its arrival time."""

    event: ChangeEvent
    #: service tick at which the event was fed
    arrived_tick: int
    #: modeled clock reading at arrival (never wall time)
    arrived_seconds: float


class AdmissionPolicy(abc.ABC):
    """Decides how many queued events form the next batch."""

    name: str = "abstract"

    @abc.abstractmethod
    def admit(
        self, pending: Sequence[PendingChange], tick: int, now: float
    ) -> int:
        """Length of the queue prefix to admit at service ``tick``.

        ``pending`` is the queue in arrival order, ``now`` the current
        modeled-clock reading.  Return ``0`` to hold everything for a
        later tick; the service clamps the result to ``len(pending)``.
        """


class SizeAdmission(AdmissionPolicy):
    """Admit a batch once ``max_events`` events have queued.

    Classic count-based batching: amortizes per-batch strategy overhead
    but lets a trickle of events wait indefinitely (pair with a
    deadline via :class:`HybridAdmission` for bounded staleness).
    """

    name = "size"

    def __init__(self, max_events: int = 8) -> None:
        if max_events < 1:
            raise ConfigurationError("max_events must be >= 1")
        self.max_events = max_events

    def admit(
        self, pending: Sequence[PendingChange], tick: int, now: float
    ) -> int:
        if len(pending) >= self.max_events:
            return self.max_events
        return 0


class DeadlineAdmission(AdmissionPolicy):
    """Admit everything once the oldest event has waited long enough.

    ``max_delay_ticks`` bounds staleness in service ticks;
    ``max_delay_seconds`` (optional) additionally bounds it on the
    modeled clock.  Either deadline expiring flushes the whole queue.
    """

    name = "deadline"

    def __init__(
        self,
        max_delay_ticks: int = 4,
        max_delay_seconds: Optional[float] = None,
    ) -> None:
        if max_delay_ticks < 0:
            raise ConfigurationError("max_delay_ticks must be >= 0")
        if max_delay_seconds is not None and max_delay_seconds < 0:
            raise ConfigurationError("max_delay_seconds must be >= 0")
        self.max_delay_ticks = max_delay_ticks
        self.max_delay_seconds = max_delay_seconds

    def admit(
        self, pending: Sequence[PendingChange], tick: int, now: float
    ) -> int:
        if not pending:
            return 0
        oldest = pending[0]
        if tick - oldest.arrived_tick >= self.max_delay_ticks:
            return len(pending)
        if (
            self.max_delay_seconds is not None
            and now - oldest.arrived_seconds >= self.max_delay_seconds
        ):
            return len(pending)
        return 0


class HybridAdmission(AdmissionPolicy):
    """Size-triggered batches with a staleness bound (the default).

    A full batch is admitted as soon as ``max_events`` events queue; a
    partial batch is flushed once the deadline expires.  This is the
    standard latency/throughput compromise of streaming ingest loops.
    """

    name = "hybrid"

    def __init__(
        self,
        max_events: int = 8,
        max_delay_ticks: int = 4,
        max_delay_seconds: Optional[float] = None,
    ) -> None:
        self.size = SizeAdmission(max_events)
        self.deadline = DeadlineAdmission(max_delay_ticks, max_delay_seconds)

    def admit(
        self, pending: Sequence[PendingChange], tick: int, now: float
    ) -> int:
        by_size = self.size.admit(pending, tick, now)
        if by_size:
            return by_size
        return self.deadline.admit(pending, tick, now)
