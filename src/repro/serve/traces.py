"""Churn traces: synthetic mixed-change feeds + JSONL trace files.

A *churn trace* is a base graph plus a feed of individual change
events, each stamped with the service tick at which it arrives — the
input format of the serve loop (`repro serve` replays trace files;
:func:`synthesize_churn` builds seeded synthetic ones).

Three built-in shapes, each engineered to favor a different dynamic
strategy so the signal-driven policy has real choices to make:

* ``steady-small`` — a trickle of low-degree vertex additions plus
  occasional base-edge deletions/reweights; cheap RoundRobin-PS
  placement is hard to beat.
* ``bursty-communities`` — periodic bursts of new vertices densely
  wired *to each other*; exactly the structure CutEdge-PS partitions.
* ``skew-grow`` — large batches anchored to a few hub vertices, so cut
  load skews onto the hubs' ranks until a Repartition-S (with DV-row
  migration) pays for itself.

Feed-safety invariant: deletions and reweights reference only *base*
edges/vertices (each edge deleted at most once, pools disjoint), and
additions reference only base vertices or earlier new vertices — so
any admission policy's prefix batching yields valid batches.

Determinism: generation is seeded (`random.Random(seed)`), the JSONL
encoding is canonical (sorted keys), and nothing reads the host clock.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from ..errors import ConfigurationError
from ..graph.changes import (
    ChangeEvent,
    EdgeAddition,
    EdgeDeletion,
    EdgeReweight,
    VertexAddition,
    VertexDeletion,
)
from ..graph.generators import barabasi_albert
from ..graph.graph import Graph

__all__ = [
    "ChurnTrace",
    "TRACE_SHAPES",
    "synthesize_churn",
    "save_change_trace",
    "load_change_trace",
    "event_to_obj",
    "obj_to_event",
]

_PathLike = Union[str, Path]


@dataclass(frozen=True)
class ChurnTrace:
    """A base graph and a tick-stamped feed of change events."""

    name: str
    base: Graph
    #: ``(tick, event)`` pairs, ticks non-decreasing
    events: Tuple[Tuple[int, ChangeEvent], ...]
    #: total service ticks the trace spans (>= last event tick + 1)
    ticks: int

    def events_at(self, tick: int) -> List[ChangeEvent]:
        return [ev for t, ev in self.events if t == tick]

    @property
    def num_events(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
# synthetic shapes
# ----------------------------------------------------------------------
def _deletable_edges(g: Graph, rng: random.Random, count: int) -> List[
    Tuple[int, int]
]:
    """Base edges safe to delete: both endpoints keep degree >= 2."""
    degree = {v: g.degree(v) for v in g.vertices()}
    out: List[Tuple[int, int]] = []
    for u, v, _w in sorted(g.edges()):
        if degree[u] >= 3 and degree[v] >= 3:
            out.append((u, v))
            degree[u] -= 1
            degree[v] -= 1
    rng.shuffle(out)
    return out[:count]


def _steady_small(
    base: Graph, ticks: int, rng: random.Random
) -> List[Tuple[int, ChangeEvent]]:
    verts = sorted(base.vertices())
    next_id = max(verts) + 1
    pool = _deletable_edges(base, rng, ticks)
    delete_pool = pool[: len(pool) // 2]
    reweight_pool = pool[len(pool) // 2:]
    events: List[Tuple[int, ChangeEvent]] = []
    for t in range(ticks):
        for _ in range(1 + (t % 2)):
            anchors = rng.sample(verts, 2)
            events.append(
                (t, VertexAddition(next_id, tuple((a, 1.0) for a in anchors)))
            )
            next_id += 1
        if t % 6 == 3 and delete_pool:
            u, v = delete_pool.pop()
            events.append((t, EdgeDeletion(u, v)))
        if t % 8 == 5 and reweight_pool:
            u, v = reweight_pool.pop()
            events.append((t, EdgeReweight(u, v, 2.0)))
    return events


def _bursty_communities(
    base: Graph, ticks: int, rng: random.Random
) -> List[Tuple[int, ChangeEvent]]:
    verts = sorted(base.vertices())
    next_id = max(verts) + 1
    delete_pool = _deletable_edges(base, rng, ticks // 4)
    events: List[Tuple[int, ChangeEvent]] = []
    for t in range(ticks):
        if t % 4 == 1:
            # a community of 8 new vertices: ring + chords among
            # themselves (>= 1 intra edge per vertex), 2 anchors total
            ids = list(range(next_id, next_id + 8))
            next_id += 8
            anchors = rng.sample(verts, 2)
            for i, v in enumerate(ids):
                edges: List[Tuple[int, float]] = []
                if i > 0:
                    edges.append((ids[i - 1], 1.0))
                if i >= 4:
                    edges.append((ids[i - 4], 1.0))
                if i == 0:
                    edges.append((anchors[0], 1.0))
                if i == len(ids) - 1:
                    edges.append((ids[0], 1.0))
                    edges.append((anchors[1], 1.0))
                events.append((t, VertexAddition(v, tuple(edges))))
        elif t % 4 == 3 and delete_pool:
            u, v = delete_pool.pop()
            events.append((t, EdgeDeletion(u, v)))
    return events


def _skew_grow(
    base: Graph, ticks: int, rng: random.Random
) -> List[Tuple[int, ChangeEvent]]:
    verts = sorted(base.vertices())
    next_id = max(verts) + 1
    # the hubs: the highest-degree base vertices attract every anchor,
    # skewing cut load onto the ranks that own them
    hubs = sorted(verts, key=lambda v: (-base.degree(v), v))[:4]
    delete_pool = _deletable_edges(base, rng, ticks // 5)
    events: List[Tuple[int, ChangeEvent]] = []
    batch_size = max(4, base.num_vertices // 24)
    for t in range(ticks):
        if t % 3 == 1:
            for _ in range(batch_size):
                anchor = hubs[rng.randrange(len(hubs))]
                second = hubs[rng.randrange(len(hubs))]
                edges = [(anchor, 1.0)]
                if second != anchor:
                    edges.append((second, 1.0))
                events.append((t, VertexAddition(next_id, tuple(edges))))
                next_id += 1
        elif t % 5 == 4 and delete_pool:
            u, v = delete_pool.pop()
            events.append((t, EdgeDeletion(u, v)))
    return events


#: shape name -> generator(base, ticks, rng) -> [(tick, event), ...]
TRACE_SHAPES = {
    "steady-small": _steady_small,
    "bursty-communities": _bursty_communities,
    "skew-grow": _skew_grow,
}


def synthesize_churn(
    shape: str,
    *,
    n_base: int = 120,
    ticks: int = 24,
    seed: int = 0,
) -> ChurnTrace:
    """Build a seeded synthetic churn trace of the given ``shape``."""
    gen = TRACE_SHAPES.get(shape)
    if gen is None:
        raise ConfigurationError(
            f"unknown trace shape {shape!r}; available:"
            f" {sorted(TRACE_SHAPES)}"
        )
    if n_base < 8:
        raise ConfigurationError("n_base must be >= 8")
    if ticks < 1:
        raise ConfigurationError("ticks must be >= 1")
    base = barabasi_albert(n_base, 2, seed=seed)
    rng = random.Random(seed + 0x5EED)
    events = gen(base, ticks, rng)
    return ChurnTrace(
        name=shape, base=base, events=tuple(events), ticks=ticks
    )


# ----------------------------------------------------------------------
# JSONL trace files (the `repro serve` input format)
# ----------------------------------------------------------------------
def event_to_obj(tick: int, event: ChangeEvent) -> Dict[str, object]:
    """One event as a JSON-ready object (schema: change_trace.schema.json)."""
    if isinstance(event, VertexAddition):
        return {
            "at": tick,
            "op": "add_vertex",
            "v": event.vertex,
            "edges": [[t, w] for t, w in event.edges],
        }
    if isinstance(event, EdgeAddition):
        return {
            "at": tick, "op": "add_edge",
            "u": event.u, "v": event.v, "w": event.weight,
        }
    if isinstance(event, EdgeReweight):
        return {
            "at": tick, "op": "reweight",
            "u": event.u, "v": event.v, "w": event.weight,
        }
    if isinstance(event, EdgeDeletion):
        return {"at": tick, "op": "del_edge", "u": event.u, "v": event.v}
    if isinstance(event, VertexDeletion):
        return {"at": tick, "op": "del_vertex", "v": event.vertex}
    raise ConfigurationError(f"not a change event: {type(event).__name__}")


def obj_to_event(obj: Dict[str, object]) -> Tuple[int, ChangeEvent]:
    """Parse one trace object back into ``(tick, event)``."""
    tick = int(obj["at"])  # type: ignore[arg-type]
    op = obj.get("op")
    if op == "add_vertex":
        edges = tuple(
            (int(t), float(w))
            for t, w in obj.get("edges", [])  # type: ignore[union-attr]
        )
        return tick, VertexAddition(int(obj["v"]), edges)  # type: ignore[arg-type]
    if op == "add_edge":
        return tick, EdgeAddition(
            int(obj["u"]), int(obj["v"]), float(obj.get("w", 1.0))  # type: ignore[arg-type]
        )
    if op == "reweight":
        return tick, EdgeReweight(
            int(obj["u"]), int(obj["v"]), float(obj["w"])  # type: ignore[arg-type]
        )
    if op == "del_edge":
        return tick, EdgeDeletion(int(obj["u"]), int(obj["v"]))  # type: ignore[arg-type]
    if op == "del_vertex":
        return tick, VertexDeletion(int(obj["v"]))  # type: ignore[arg-type]
    raise ConfigurationError(f"unknown trace op {op!r}")


def save_change_trace(
    path: _PathLike, events: Iterable[Tuple[int, ChangeEvent]]
) -> None:
    """Write a tick-stamped event feed as canonical JSONL."""
    lines = [
        json.dumps(event_to_obj(tick, ev), sort_keys=True)
        for tick, ev in events
    ]
    Path(path).write_text(
        "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
    )


def load_change_trace(path: _PathLike) -> List[Tuple[int, ChangeEvent]]:
    """Read a JSONL event feed written by :func:`save_change_trace`."""
    out: List[Tuple[int, ChangeEvent]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            out.append(obj_to_event(json.loads(line)))
    return out
