"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate finer-grained conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for graph-structure errors."""


class VertexNotFound(GraphError, KeyError):
    """A vertex id was referenced that is not present in the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:  # KeyError quotes its arg; keep a plain message
        return f"vertex {self.vertex} is not in the graph"


class EdgeNotFound(GraphError, KeyError):
    """An edge was referenced that is not present in the graph."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__((u, v))
        self.u = u
        self.v = v

    def __str__(self) -> str:
        return f"edge ({self.u}, {self.v}) is not in the graph"


class DuplicateVertex(GraphError, ValueError):
    """Attempted to add a vertex id that already exists."""


class InvalidWeight(GraphError, ValueError):
    """Edge weights must be positive and finite for shortest-path analysis."""


class PartitionError(ReproError):
    """Base class for partitioning errors."""


class InvalidPartition(PartitionError, ValueError):
    """A partition does not cover the vertex set exactly once."""


class BalanceConstraintError(PartitionError):
    """A partitioner could not satisfy the requested balance tolerance."""


class RuntimeSimulationError(ReproError):
    """Base class for simulated-cluster runtime errors."""


class WorkerError(RuntimeSimulationError):
    """A simulated worker entered an inconsistent state."""


class CommunicationError(RuntimeSimulationError):
    """A message was routed to a nonexistent worker or malformed."""


class ConvergenceError(ReproError):
    """The recombination loop exceeded its iteration budget without
    reaching a fixed point."""


class ConfigurationError(ReproError, ValueError):
    """Invalid algorithm or model configuration."""


class ChangeStreamError(ReproError, ValueError):
    """A dynamic-change event is malformed or inconsistent with the graph."""
