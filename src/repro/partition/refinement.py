"""Greedy k-way boundary refinement (Fiduccia–Mattheyses style).

Given a level of the multilevel hierarchy and a block assignment, repeatedly
move boundary vertices to the neighboring block with the largest positive
cut gain, subject to a balance constraint.  Zero-gain moves are allowed when
they improve balance, which lets the refiner escape plateaus.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .coarsening import Level

__all__ = ["refine_level", "compute_cut", "block_weights"]


def block_weights(level: Level, assign: Dict[int, int], nparts: int) -> List[float]:
    """Total vertex weight per block."""
    weights = [0.0] * nparts
    for v, r in assign.items():
        weights[r] += level.vwgt[v]
    return weights


def compute_cut(level: Level, assign: Dict[int, int]) -> float:
    """Total weight of edges crossing blocks (each edge counted once)."""
    cut = 0.0
    for v, nbrs in level.adj.items():
        rv = assign[v]
        for u, w in nbrs.items():
            if u > v and assign[u] != rv:
                cut += w
    return cut


def _neighbor_block_weights(
    level: Level, assign: Dict[int, int], v: int
) -> Dict[int, float]:
    """Edge weight from ``v`` to each block among its neighbors."""
    conn: Dict[int, float] = {}
    for u, w in level.adj[v].items():
        r = assign[u]
        conn[r] = conn.get(r, 0.0) + w
    return conn


def refine_level(
    level: Level,
    assign: Dict[int, int],
    nparts: int,
    *,
    max_load: "float | Sequence[float]",
    max_passes: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Dict[int, int], float]:
    """Refine ``assign`` in place-ish; returns ``(assignment, cut_weight)``.

    ``max_load`` may be a scalar (uniform cap) or one cap per block
    (heterogeneous targets).  Invariant guaranteed to callers (and
    asserted by tests): the returned cut weight never exceeds the starting
    cut weight, and no block's weight exceeds its cap unless it already
    did on entry (in which case only weight-decreasing moves touch it).
    """
    rng = rng or np.random.default_rng(0)
    assign = dict(assign)
    if isinstance(max_load, (int, float)):
        caps = [float(max_load)] * nparts
    else:
        caps = [float(c) for c in max_load]
        if len(caps) != nparts:
            raise ValueError(f"need {nparts} caps, got {len(caps)}")
    loads = block_weights(level, assign, nparts)
    total_load = sum(loads)
    # with tight caps (a genuine balance constraint) blocks must not be
    # drained far below their share — refinement moves only along edges,
    # so an emptied block can never be refilled; with loose caps the
    # caller explicitly tolerates imbalance and consolidation is allowed
    tight_balance = sum(caps) <= 1.5 * total_load if total_load else False

    def rel(r: int, load: float) -> float:
        """Load relative to the block's capacity (heterogeneous targets)."""
        return load / caps[r] if caps[r] > 0 else float("inf")

    for _pass in range(max_passes):
        moved = 0
        order = sorted(level.adj)
        rng.shuffle(order)
        for v in order:
            rv = assign[v]
            conn = _neighbor_block_weights(level, assign, v)
            internal = conn.get(rv, 0.0)
            wv = level.vwgt[v]
            best_r, best_gain = rv, 0.0
            for r, ext in conn.items():
                if r == rv:
                    continue
                # a move over the target's cap is only tolerated when it
                # still improves *relative* balance (escape valve for
                # projections that arrive badly imbalanced)
                if loads[r] + wv > caps[r] and rel(r, loads[r] + wv) >= rel(
                    rv, loads[rv]
                ):
                    continue
                if tight_balance and rel(rv, loads[rv] - wv) < 0.45:
                    continue  # see tight_balance note above
                gain = ext - internal
                better_balance = rel(r, loads[r] + wv) < rel(rv, loads[rv])
                if gain > best_gain or (
                    gain == best_gain and best_r == rv and gain == 0.0
                    and better_balance
                ):
                    best_gain, best_r = gain, r
            if best_r != rv:
                assign[v] = best_r
                loads[rv] -= wv
                loads[best_r] += wv
                moved += 1
        if moved == 0:
            break
    return assign, compute_cut(level, assign)
