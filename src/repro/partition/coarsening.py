"""Graph coarsening by heavy-edge matching (the METIS coarsening phase).

The multilevel partitioner repeatedly contracts a matching of the current
graph until it is small enough to partition directly.  Heavy-edge matching
preferentially contracts high-weight edges, which empirically preserves the
cut structure (Karypis & Kumar 1998).

Levels are plain adjacency dictionaries with vertex weights — coarse
vertices stand for sets of fine vertices, so their weight is the number of
original vertices they contain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..graph.graph import Graph

__all__ = ["Level", "level_from_graph", "heavy_edge_matching", "contract"]

_Adj = Dict[int, Dict[int, float]]


@dataclass
class Level:
    """One level of the multilevel hierarchy."""

    adj: _Adj
    vwgt: Dict[int, float]
    #: map from the next-finer level's vertex ids to this level's ids
    fine_to_coarse: Dict[int, int]

    @property
    def num_vertices(self) -> int:
        return len(self.adj)

    def total_vertex_weight(self) -> float:
        return float(sum(self.vwgt.values()))


def level_from_graph(graph: Graph) -> Level:
    """The finest level: unit vertex weights, identity mapping."""
    adj: _Adj = {v: dict(graph.adjacency_of(v)) for v in graph.vertices()}
    vwgt = {v: 1.0 for v in adj}
    return Level(adj=adj, vwgt=vwgt, fine_to_coarse={v: v for v in adj})


def heavy_edge_matching(
    level: Level,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> Dict[int, int]:
    """Compute a matching, preferring heavy edges and light partners.

    Returns ``mate`` where ``mate[v]`` is ``v``'s partner (or ``v`` itself
    if unmatched).  A match is refused when the combined vertex weight would
    exceed ``max_vertex_weight`` — this keeps coarse vertices small enough
    for the balance constraint to remain satisfiable.
    """
    order = sorted(level.adj)
    rng.shuffle(order)
    mate: Dict[int, int] = {}
    for v in order:
        if v in mate:
            continue
        best_u, best_w = None, -1.0
        wv = level.vwgt[v]
        for u, w in level.adj[v].items():
            if u in mate or u == v:
                continue
            if wv + level.vwgt[u] > max_vertex_weight:
                continue
            # heavier edge wins; tie-break toward the lighter partner so
            # coarse vertex weights stay even
            if w > best_w or (
                w == best_w and best_u is not None
                and level.vwgt[u] < level.vwgt[best_u]
            ):
                best_u, best_w = u, w
        if best_u is None:
            mate[v] = v
        else:
            mate[v] = best_u
            mate[best_u] = v
    return mate


def contract(level: Level, mate: Dict[int, int]) -> Level:
    """Contract a matching into the next-coarser level."""
    coarse_id: Dict[int, int] = {}
    nxt = 0
    for v in sorted(level.adj):
        if v in coarse_id:
            continue
        u = mate.get(v, v)
        coarse_id[v] = nxt
        coarse_id[u] = nxt
        nxt += 1
    cadj: _Adj = {c: {} for c in range(nxt)}
    cvwgt: Dict[int, float] = {c: 0.0 for c in range(nxt)}
    for v, nbrs in level.adj.items():
        cv = coarse_id[v]
        for u, w in nbrs.items():
            if u < v:
                continue
            cu = coarse_id[u]
            if cu == cv:
                continue  # matched edge collapses; weight leaves the cut pool
            cadj[cv][cu] = cadj[cv].get(cu, 0.0) + w
            cadj[cu][cv] = cadj[cu].get(cv, 0.0) + w
    seen = set()
    for v in level.adj:
        cv = coarse_id[v]
        if v not in seen:
            cvwgt[cv] += level.vwgt[v]
            seen.add(v)
    return Level(adj=cadj, vwgt=cvwgt, fine_to_coarse=coarse_id)
