"""Hash partitioner: the classic distributed-systems default placement."""

from __future__ import annotations

from ..graph.graph import Graph
from ..types import Rank, VertexId
from .base import Partition, Partitioner

__all__ = ["HashPartitioner"]


def _mix(v: int) -> int:
    """A 64-bit integer mix (splitmix64 finalizer) for stable hashing.

    Python's builtin ``hash`` of an int is the int itself, which would make
    hash partitioning identical to ``v % nparts`` — a poor spread for the
    contiguous ids our generators produce.
    """
    v = (v + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    v = ((v ^ (v >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    v = ((v ^ (v >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return v ^ (v >> 31)


class HashPartitioner(Partitioner):
    """Assign each vertex to ``mix(v) % nparts``.

    Stateless and history-independent: a vertex's owner never changes as
    the graph grows, which makes this a useful (if cut-oblivious) baseline
    for dynamic placement.
    """

    def partition(self, graph: Graph, nparts: int) -> Partition:
        if nparts < 1:
            raise ValueError(f"nparts must be >= 1, got {nparts}")
        assignment: dict[VertexId, Rank] = {
            v: _mix(v) % nparts for v in graph.vertices()
        }
        return Partition(nparts, assignment)

    @staticmethod
    def owner_of(v: VertexId, nparts: int) -> Rank:
        """Owner of a single vertex without materializing a partition."""
        return _mix(v) % nparts
