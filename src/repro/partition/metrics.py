"""Partition quality metrics.

Cut size and balance are the two quantities the paper's load-imbalance
analysis revolves around (§IV: "the number of vertices and the number of
cut-edges assigned to each processor").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..graph.graph import Graph
from ..types import VertexId, WeightedEdge
from .base import Partition

__all__ = [
    "cut_edges",
    "edge_cut",
    "weighted_edge_cut",
    "cut_size_per_block",
    "balance",
    "imbalance",
    "new_cut_edges",
    "partition_report",
]


def cut_edges(graph: Graph, partition: Partition) -> List[WeightedEdge]:
    """All edges whose endpoints live in different blocks (each once)."""
    assign = partition.assignment
    return [
        (u, v, w) for u, v, w in graph.edges() if assign[u] != assign[v]
    ]


def edge_cut(graph: Graph, partition: Partition) -> int:
    """Number of cut edges."""
    assign = partition.assignment
    return sum(1 for u, v, _w in graph.edges() if assign[u] != assign[v])


def weighted_edge_cut(graph: Graph, partition: Partition) -> float:
    """Total weight of cut edges."""
    assign = partition.assignment
    return float(
        sum(w for u, v, w in graph.edges() if assign[u] != assign[v])
    )


def cut_size_per_block(graph: Graph, partition: Partition) -> List[int]:
    """Per-block cut size: how many cut edges touch each block.

    A cut edge contributes to *both* endpoint blocks (this is the paper's
    per-processor "cut-size of a sub-graph").
    """
    counts = [0] * partition.nparts
    assign = partition.assignment
    for u, v, _w in graph.edges():
        ru, rv = assign[u], assign[v]
        if ru != rv:
            counts[ru] += 1
            counts[rv] += 1
    return counts


def balance(partition: Partition) -> float:
    """Max block size over average block size (1.0 = perfectly balanced)."""
    sizes = partition.block_sizes()
    total = sum(sizes)
    if total == 0:
        return 1.0
    avg = total / partition.nparts
    return max(sizes) / avg


def imbalance(values: Sequence[float]) -> float:
    """Generic load-imbalance factor ``max/mean - 1`` (0 = balanced)."""
    vals = list(values)
    if not vals:
        return 0.0
    mean = sum(vals) / len(vals)
    if mean == 0:
        return 0.0
    return max(vals) / mean - 1.0


def new_cut_edges(
    graph_after: Graph,
    partition_after: Partition,
    old_edges: set[Tuple[VertexId, VertexId]],
) -> int:
    """Cut edges of ``partition_after`` that did not exist before the change.

    This is the quantity of Fig. 7: "Number of new cut-edges created by
    different strategies".  ``old_edges`` holds the pre-change edge set as
    canonical ``(min, max)`` pairs.  An edge counts as *new* if it was not
    in the graph before the change (edges that became cut because their
    endpoints migrated are measured separately by :func:`edge_cut` deltas).
    """
    assign = partition_after.assignment
    count = 0
    for u, v, _w in graph_after.edges():
        key = (u, v) if u <= v else (v, u)
        if key not in old_edges and assign[u] != assign[v]:
            count += 1
    return count


def partition_report(graph: Graph, partition: Partition) -> Dict[str, object]:
    """A summary dict used by benchmarks and the CLI."""
    sizes = partition.block_sizes()
    cuts = cut_size_per_block(graph, partition)
    return {
        "nparts": partition.nparts,
        "block_sizes": sizes,
        "balance": balance(partition),
        "edge_cut": edge_cut(graph, partition),
        "weighted_edge_cut": weighted_edge_cut(graph, partition),
        "cut_per_block": cuts,
        "cut_imbalance": imbalance([float(c) for c in cuts]),
    }
