"""BFS region-growing partitioner (greedy graph growing).

Grows ``nparts`` regions breadth-first from spread-out seeds, capping each
region at ``ceil(n / nparts)`` vertices.  This is the classic GGP heuristic
also used to produce initial partitions inside the multilevel driver.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from ..graph.graph import Graph
from ..types import Rank, VertexId
from .base import Partition, Partitioner

__all__ = ["BFSGrowingPartitioner", "bfs_grow"]


def _pick_seeds(graph: Graph, nparts: int, rng: np.random.Generator) -> List[VertexId]:
    """Pick ``nparts`` seeds far apart: repeated farthest-first BFS sweeps."""
    order = graph.vertex_list()
    if not order:
        return []
    seeds = [order[int(rng.integers(len(order)))]]
    while len(seeds) < nparts:
        # BFS from all current seeds; farthest vertex becomes the next seed
        dist: Dict[VertexId, int] = {s: 0 for s in seeds}
        queue = deque(seeds)
        farthest = seeds[-1]
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u not in dist:
                    dist[u] = dist[v] + 1
                    queue.append(u)
                    farthest = u
        if farthest in seeds:
            # disconnected graph: grab any unvisited vertex
            remaining = [v for v in order if v not in dist]
            if remaining:
                farthest = remaining[int(rng.integers(len(remaining)))]
            else:
                farthest = order[int(rng.integers(len(order)))]
        if farthest in seeds:
            break  # tiny graph; duplicates would loop forever
        seeds.append(farthest)
    # pad with arbitrary vertices if the graph is smaller than nparts
    i = 0
    while len(seeds) < nparts and i < len(order):
        if order[i] not in seeds:
            seeds.append(order[i])
        i += 1
    return seeds


def bfs_grow(
    graph: Graph,
    nparts: int,
    *,
    seed: Optional[int] = None,
    capacity_slack: float = 0.0,
) -> Dict[VertexId, Rank]:
    """Grow balanced BFS regions; returns the assignment map.

    ``capacity_slack`` relaxes each region's cap by the given fraction.
    Unreached vertices (disconnected graphs) are swept into the smallest
    regions afterwards.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    cap = int(np.ceil(n / nparts * (1.0 + capacity_slack))) if n else 0
    assignment: Dict[VertexId, Rank] = {}
    seeds = _pick_seeds(graph, nparts, rng)
    frontiers: List[deque] = [deque() for _ in range(nparts)]
    sizes = [0] * nparts
    for r, s in enumerate(seeds):
        if r >= nparts:
            break
        if s not in assignment:
            assignment[s] = r
            sizes[r] += 1
            frontiers[r].append(s)
    active = True
    while active:
        active = False
        for r in range(nparts):
            if sizes[r] >= cap or not frontiers[r]:
                continue
            v = frontiers[r].popleft()
            for u in graph.neighbors(v):
                if u not in assignment and sizes[r] < cap:
                    assignment[u] = r
                    sizes[r] += 1
                    frontiers[r].append(u)
            if frontiers[r]:
                active = True
    # sweep leftovers (caps hit, or disconnected pieces) into smallest blocks
    for v in graph.vertex_list():
        if v not in assignment:
            r = int(np.argmin(sizes))
            assignment[v] = r
            sizes[r] += 1
    return assignment


class BFSGrowingPartitioner(Partitioner):
    """Greedy graph-growing partitioner with farthest-first seeding."""

    def __init__(self, seed: Optional[int] = None, capacity_slack: float = 0.05):
        self.seed = seed
        self.capacity_slack = capacity_slack

    def partition(self, graph: Graph, nparts: int) -> Partition:
        return Partition(
            nparts,
            bfs_grow(
                graph, nparts, seed=self.seed, capacity_slack=self.capacity_slack
            ),
        )
