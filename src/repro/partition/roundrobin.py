"""Round-robin and related trivial partitioners.

Round-robin is the paper's RoundRobin-PS placement rule: vertices are dealt
to processors in a circular fashion, O(k) with no regard for edges.  It is
both a baseline partitioner for the DD phase and the placement engine of
the RoundRobin-PS processor-assignment strategy.
"""

from __future__ import annotations

from typing import Iterable

from ..graph.graph import Graph
from ..types import Rank, VertexId
from .base import Partition, Partitioner

__all__ = ["RoundRobinPartitioner", "round_robin_assign", "ContiguousPartitioner"]


def round_robin_assign(
    vertices: Iterable[VertexId], nparts: int, start: Rank = 0
) -> dict[VertexId, Rank]:
    """Assign vertices to ranks cyclically starting at ``start``.

    The starting offset lets successive batches continue the rotation so
    repeated small batches stay balanced overall (used by RoundRobin-PS
    across recombination steps).
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    assignment: dict[VertexId, Rank] = {}
    r = start % nparts
    for v in sorted(vertices):
        assignment[v] = r
        r = (r + 1) % nparts
    return assignment


class RoundRobinPartitioner(Partitioner):
    """Deal vertices to blocks cyclically in sorted-id order."""

    def partition(self, graph: Graph, nparts: int) -> Partition:
        return Partition(nparts, round_robin_assign(graph.vertices(), nparts))


class ContiguousPartitioner(Partitioner):
    """Split the sorted vertex list into ``nparts`` contiguous ranges.

    For generators that allocate ids in creation order this keeps
    temporally-close vertices together — a cheap locality heuristic used as
    another baseline.
    """

    def partition(self, graph: Graph, nparts: int) -> Partition:
        order = graph.vertex_list()
        n = len(order)
        assignment: dict[VertexId, Rank] = {}
        if n == 0:
            return Partition(nparts, assignment)
        base, extra = divmod(n, nparts)
        idx = 0
        for r in range(nparts):
            size = base + (1 if r < extra else 0)
            for v in order[idx : idx + size]:
                assignment[v] = r
            idx += size
        return Partition(nparts, assignment)
