"""Partitioning substrate: multilevel k-way partitioner and baselines."""

from .base import Partition, Partitioner
from .bfs_growing import BFSGrowingPartitioner, bfs_grow
from .hashing import HashPartitioner
from .metrics import (
    balance,
    cut_edges,
    cut_size_per_block,
    edge_cut,
    imbalance,
    new_cut_edges,
    partition_report,
    weighted_edge_cut,
)
from .multilevel import MultilevelPartitioner
from .roundrobin import ContiguousPartitioner, RoundRobinPartitioner, round_robin_assign
from .spectral import SpectralPartitioner
from .streaming import LDGPartitioner, ldg_stream_assign

__all__ = [
    "Partition",
    "Partitioner",
    "MultilevelPartitioner",
    "SpectralPartitioner",
    "LDGPartitioner",
    "ldg_stream_assign",
    "BFSGrowingPartitioner",
    "bfs_grow",
    "HashPartitioner",
    "RoundRobinPartitioner",
    "ContiguousPartitioner",
    "round_robin_assign",
    "cut_edges",
    "edge_cut",
    "weighted_edge_cut",
    "cut_size_per_block",
    "balance",
    "imbalance",
    "new_cut_edges",
    "partition_report",
]
