"""Multilevel k-way graph partitioner (the library's METIS stand-in).

Three phases, exactly the structure of Karypis & Kumar's multilevel scheme:

1. **Coarsening** — heavy-edge matching contracts the graph level by level
   until it has at most ``coarsen_to`` vertices (or stops shrinking).
2. **Initial partitioning** — weighted greedy region growing on the
   coarsest graph, then boundary refinement.
3. **Uncoarsening** — project the assignment back level by level, running
   boundary refinement at every level.

The partitioner enforces a balance constraint
``max_block_weight <= (1 + epsilon) * total / nparts`` (vertex weights are
the number of original vertices a coarse vertex represents).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import BalanceConstraintError
from ..graph.graph import Graph
from ..types import Rank, VertexId
from .base import Partition, Partitioner
from .coarsening import Level, contract, heavy_edge_matching, level_from_graph
from .refinement import refine_level

__all__ = ["MultilevelPartitioner"]


def _grow_initial(
    level: Level, nparts: int, caps: List[float], rng: np.random.Generator
) -> Dict[int, int]:
    """Weighted greedy region growing on the coarsest level.

    ``caps[r]`` bounds block ``r``'s vertex weight (uniform for homogeneous
    clusters, proportional to processor speed for heterogeneous ones).
    """
    assign: Dict[int, int] = {}
    loads = [0.0] * nparts
    vertices = sorted(level.adj)
    if not vertices:
        return assign
    # Seed each region with mutually *distant* vertices: after the first
    # (highest-degree) seed, every further seed minimizes its edge weight
    # to the seeds already chosen (ties broken toward high degree).
    # Degree-only seeding can drop several seeds into one dense community,
    # which the balance caps then freeze into a poor cut.
    by_degree = sorted(vertices, key=lambda v: (-len(level.adj[v]), v))
    seeds: List[int] = [by_degree[0]]
    seed_set = {by_degree[0]}
    while len(seeds) < min(nparts, len(vertices)):
        best_v, best_key = None, None
        for v in by_degree:
            if v in seed_set:
                continue
            to_seeds = sum(
                w for u, w in level.adj[v].items() if u in seed_set
            )
            key = (to_seeds, -len(level.adj[v]), v)
            if best_key is None or key < best_key:
                best_key, best_v = key, v
        assert best_v is not None
        seeds.append(best_v)
        seed_set.add(best_v)
    frontiers: List[deque] = [deque() for _ in range(nparts)]
    for r, v in enumerate(seeds):
        assign[v] = r
        loads[r] += level.vwgt[v]
        frontiers[r].append(v)
    active = True
    while active:
        active = False
        # always grow the lightest region that still has a frontier
        order = sorted(range(nparts), key=lambda r: loads[r])
        for r in order:
            if not frontiers[r]:
                continue
            v = frontiers[r].popleft()
            for u in sorted(level.adj[v], key=lambda u: -level.adj[v][u]):
                if u in assign:
                    continue
                if loads[r] + level.vwgt[u] > caps[r]:
                    continue
                assign[u] = r
                loads[r] += level.vwgt[u]
                frontiers[r].append(u)
            if frontiers[r]:
                active = True
    # leftovers (caps or disconnection): lightest block that fits, else lightest
    for v in vertices:
        if v in assign:
            continue
        order = sorted(range(nparts), key=lambda r: loads[r])
        placed = False
        for r in order:
            if loads[r] + level.vwgt[v] <= caps[r]:
                assign[v] = r
                loads[r] += level.vwgt[v]
                placed = True
                break
        if not placed:
            r = order[0]
            assign[v] = r
            loads[r] += level.vwgt[v]
    return assign


class MultilevelPartitioner(Partitioner):
    """METIS-style multilevel k-way partitioner.

    Parameters
    ----------
    epsilon:
        Balance tolerance; block vertex-weight may exceed the average by at
        most this fraction.
    coarsen_to:
        Stop coarsening when at most this many vertices remain (scaled up
        to ``8 * nparts`` when nparts is large).
    max_passes:
        Refinement passes per level.
    seed:
        RNG seed (matching order, tie-breaks, refinement order).
    strict_balance:
        If True, raise :class:`BalanceConstraintError` when the final
        partition violates the tolerance; otherwise return best effort.
    """

    def __init__(
        self,
        *,
        epsilon: float = 0.05,
        coarsen_to: int = 64,
        max_passes: int = 8,
        seed: Optional[int] = None,
        strict_balance: bool = False,
        target_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        if target_weights is not None and any(t <= 0 for t in target_weights):
            raise ValueError("target_weights must be positive")
        self.epsilon = epsilon
        self.coarsen_to = coarsen_to
        self.max_passes = max_passes
        self.seed = seed
        self.strict_balance = strict_balance
        #: per-block share of the vertex weight (heterogeneous clusters:
        #: proportional to processor speed); None = uniform
        self.target_weights = (
            list(target_weights) if target_weights is not None else None
        )

    def partition(self, graph: Graph, nparts: int) -> Partition:
        if nparts < 1:
            raise ValueError(f"nparts must be >= 1, got {nparts}")
        n = graph.num_vertices
        if n == 0:
            return Partition(nparts, {})
        if nparts == 1:
            return Partition(1, {v: 0 for v in graph.vertices()})
        if nparts >= n:
            # degenerate: one vertex per block (some blocks empty)
            return Partition(
                nparts, {v: i for i, v in enumerate(graph.vertex_list())}
            )
        rng = np.random.default_rng(self.seed)
        total = float(n)
        if self.target_weights is not None:
            if len(self.target_weights) != nparts:
                raise ValueError(
                    f"target_weights has {len(self.target_weights)} entries"
                    f" for nparts={nparts}"
                )
            share = np.asarray(self.target_weights, dtype=np.float64)
            share = share / share.sum()
        else:
            share = np.full(nparts, 1.0 / nparts)
        caps = [(1.0 + self.epsilon) * total * s_ for s_ in share]
        avg = total / nparts
        # a coarse vertex may not itself outweigh the smallest block
        max_cluster = max(total * float(share.min()) / 4.0, 1.0)

        # ---- phase 1: coarsen -------------------------------------------
        levels: List[Level] = [level_from_graph(graph)]
        target = max(self.coarsen_to, 8 * nparts)
        while levels[-1].num_vertices > target:
            cur = levels[-1]
            mate = heavy_edge_matching(cur, rng, max_cluster)
            nxt = contract(cur, mate)
            if nxt.num_vertices >= int(0.95 * cur.num_vertices):
                break  # matching stalled (e.g. star graphs); stop coarsening
            levels.append(nxt)

        # ---- phase 2: initial partition on the coarsest level -----------
        coarsest = levels[-1]
        assign = _grow_initial(coarsest, nparts, caps, rng)
        assign, _cut = refine_level(
            coarsest, assign, nparts, max_load=caps,
            max_passes=self.max_passes, rng=rng,
        )

        # ---- phase 3: uncoarsen + refine ---------------------------------
        for fine, coarse in zip(reversed(levels[:-1]), reversed(levels[1:])):
            projected = {
                v: assign[coarse.fine_to_coarse[v]] for v in fine.adj
            }
            assign, _cut = refine_level(
                fine, projected, nparts, max_load=caps,
                max_passes=self.max_passes, rng=rng,
            )

        assignment: Dict[VertexId, Rank] = {v: assign[v] for v in graph.vertices()}
        part = Partition(nparts, assignment)
        if self.strict_balance:
            sizes = part.block_sizes()
            if any(sz > cap + 1e-9 for sz, cap in zip(sizes, caps)):
                raise BalanceConstraintError(
                    f"balance {max(sizes) / avg:.3f} exceeds tolerance"
                    f" {1 + self.epsilon:.3f}"
                )
        return part
