"""Recursive spectral bisection partitioner.

An alternative cut-minimizing partitioner used in ablation benches: split on
the sign/median of the Fiedler vector (second-smallest Laplacian
eigenvector), recursing until ``nparts`` blocks exist.  Supports non-power-
of-two ``nparts`` by splitting proportionally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..graph.graph import Graph
from ..types import Rank, VertexId
from .base import Partition, Partitioner

__all__ = ["SpectralPartitioner"]


def _fiedler_order(graph: Graph, vertices: List[VertexId], seed: int) -> List[VertexId]:
    """Vertices sorted by their Fiedler-vector value (restricted subgraph)."""
    view = graph.to_csr(vertices)
    a = view.matrix
    n = a.shape[0]
    deg = np.asarray(a.sum(axis=1)).ravel()
    lap = sp.diags(deg) - a
    rng = np.random.default_rng(seed)
    v0 = rng.random(n)
    try:
        k = min(2, n - 1)
        vals, vecs = spla.eigsh(lap.tocsc(), k=k, sigma=-1e-3, which="LM", v0=v0)
        order_idx = np.argsort(vals)
        fiedler = vecs[:, order_idx[-1]] if k == 2 else vecs[:, 0]
    except Exception:
        # eigensolver failure (tiny/disconnected pieces): fall back to id order
        return sorted(vertices)
    return [v for _, v in sorted(zip(fiedler, vertices), key=lambda t: (t[0], t[1]))]


class SpectralPartitioner(Partitioner):
    """Recursive spectral bisection with proportional splits."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed if seed is not None else 0

    def partition(self, graph: Graph, nparts: int) -> Partition:
        if nparts < 1:
            raise ValueError(f"nparts must be >= 1, got {nparts}")
        assignment: Dict[VertexId, Rank] = {}
        next_rank = [0]

        def recurse(vertices: List[VertexId], parts: int, depth: int) -> None:
            if parts == 1 or len(vertices) <= 1:
                r = next_rank[0]
                next_rank[0] += 1
                for v in vertices:
                    assignment[v] = r
                # an empty block still consumes a rank so counts line up
                return
            left_parts = parts // 2
            right_parts = parts - left_parts
            if len(vertices) <= 3:
                ordered = sorted(vertices)
            else:
                ordered = _fiedler_order(graph, vertices, self.seed + depth)
            split = round(len(ordered) * left_parts / parts)
            split = min(max(split, 0), len(ordered))
            recurse(ordered[:split], left_parts, depth * 2 + 1)
            recurse(ordered[split:], right_parts, depth * 2 + 2)

        recurse(graph.vertex_list(), nparts, 0)
        # ranks consumed may be < nparts on tiny graphs; Partition tolerates
        # empty blocks as long as assignments are < nparts
        used = next_rank[0]
        if used > nparts:
            # collapse surplus ranks (can only happen with empty slices)
            remap = {r: min(r, nparts - 1) for r in range(used)}
            assignment.update({v: remap[r] for v, r in assignment.items()})
        return Partition(nparts, assignment)
