"""Linear Deterministic Greedy (LDG) streaming partitioner.

Stanton & Kliot's one-pass heuristic: vertices arrive in a stream and each
is placed on the block with the most already-placed neighbors, damped by a
multiplicative capacity penalty ``1 - |block| / C``.  It is the standard
baseline for *streaming* placement — the regime dynamic vertex additions
live in — and doubles as a processor-assignment strategy comparison point
for RoundRobin-PS / CutEdge-PS style decisions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..graph.graph import Graph
from ..types import Rank, VertexId
from .base import Partition, Partitioner

__all__ = ["LDGPartitioner", "ldg_stream_assign"]


def ldg_stream_assign(
    graph: Graph,
    nparts: int,
    *,
    order: Optional[Iterable[VertexId]] = None,
    capacity_slack: float = 0.1,
    initial_assignment: Optional[Dict[VertexId, Rank]] = None,
    total_expected: Optional[int] = None,
) -> Dict[VertexId, Rank]:
    """Stream ``order`` (default: sorted ids) through the LDG rule.

    ``initial_assignment`` lets the stream continue from an existing
    placement (dynamic additions onto a partitioned graph);
    ``total_expected`` sets the capacity ``C = total * (1 + slack) / P``
    when the final size is known in advance.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    assignment: Dict[VertexId, Rank] = dict(initial_assignment or {})
    stream: List[VertexId] = list(order) if order is not None else sorted(
        v for v in graph.vertices() if v not in assignment
    )
    total = total_expected if total_expected is not None else (
        len(assignment) + len(stream)
    )
    capacity = max(total * (1.0 + capacity_slack) / nparts, 1.0)
    sizes = [0] * nparts
    for r in assignment.values():
        sizes[r] += 1
    for v in stream:
        neighbor_counts = [0.0] * nparts
        for u, w in graph.neighbor_items(v):
            r = assignment.get(u)
            if r is not None:
                neighbor_counts[r] += w
        best_r, best_score = 0, -np.inf
        for r in range(nparts):
            penalty = 1.0 - sizes[r] / capacity
            score = neighbor_counts[r] * max(penalty, 0.0)
            if score > best_score or (
                score == best_score and sizes[r] < sizes[best_r]
            ):
                best_score, best_r = score, r
        assignment[v] = best_r
        sizes[best_r] += 1
    return assignment


class LDGPartitioner(Partitioner):
    """One-pass streaming partitioner (Linear Deterministic Greedy)."""

    def __init__(self, *, capacity_slack: float = 0.1, seed: Optional[int] = None):
        self.capacity_slack = capacity_slack
        self.seed = seed

    def partition(self, graph: Graph, nparts: int) -> Partition:
        order = graph.vertex_list()
        if self.seed is not None:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(order)
        return Partition(
            nparts,
            ldg_stream_assign(
                graph, nparts, order=order, capacity_slack=self.capacity_slack
            ),
        )
