"""Partition value object and the partitioner interface.

A *partition* assigns every vertex of a graph to one of ``nparts`` blocks
(processors).  The DD phase, CutEdge-PS and Repartition-S all consume the
same :class:`Partitioner` interface, which is the flexibility the paper
calls out ("any cut-edge optimization based graph partitioning algorithm
can be used in this phase").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List

from ..errors import InvalidPartition
from ..graph.graph import Graph
from ..types import Rank, VertexId

__all__ = ["Partition", "Partitioner"]


@dataclass
class Partition:
    """An assignment of vertices to ``nparts`` blocks."""

    nparts: int
    assignment: Dict[VertexId, Rank]

    def __post_init__(self) -> None:
        if self.nparts < 1:
            raise InvalidPartition(f"nparts must be >= 1, got {self.nparts}")
        for v, r in self.assignment.items():
            if not 0 <= r < self.nparts:
                raise InvalidPartition(
                    f"vertex {v} assigned to rank {r}, valid range is"
                    f" [0, {self.nparts})"
                )

    def block(self, rank: Rank) -> List[VertexId]:
        """Sorted vertices of one block."""
        return sorted(v for v, r in self.assignment.items() if r == rank)

    def blocks(self) -> List[List[VertexId]]:
        """All blocks as sorted vertex lists, indexed by rank."""
        out: List[List[VertexId]] = [[] for _ in range(self.nparts)]
        for v, r in self.assignment.items():
            out[r].append(v)
        for b in out:
            b.sort()
        return out

    def block_sizes(self) -> List[int]:
        sizes = [0] * self.nparts
        for r in self.assignment.values():
            sizes[r] += 1
        return sizes

    def owner(self, v: VertexId) -> Rank:
        return self.assignment[v]

    @property
    def num_vertices(self) -> int:
        return len(self.assignment)

    def copy(self) -> "Partition":
        return Partition(self.nparts, dict(self.assignment))

    def validate_against(self, graph: Graph) -> None:
        """Check the partition covers exactly the graph's vertex set."""
        gv = set(graph.vertices())
        pv = set(self.assignment)
        if gv != pv:
            missing = sorted(gv - pv)[:5]
            extra = sorted(pv - gv)[:5]
            raise InvalidPartition(
                f"partition does not cover vertex set (missing={missing},"
                f" extra={extra})"
            )

    def merge_assignments(self, extra: Dict[VertexId, Rank]) -> "Partition":
        """A new partition with ``extra`` vertices added (ids must be new)."""
        overlap = set(extra) & set(self.assignment)
        if overlap:
            raise InvalidPartition(
                f"merge would reassign existing vertices: {sorted(overlap)[:5]}"
            )
        merged = dict(self.assignment)
        merged.update(extra)
        return Partition(self.nparts, merged)


class Partitioner(abc.ABC):
    """Interface: split a graph's vertices into ``nparts`` blocks."""

    @abc.abstractmethod
    def partition(self, graph: Graph, nparts: int) -> Partition:
        """Partition ``graph`` into ``nparts`` blocks covering all vertices."""

    @property
    def name(self) -> str:
        return type(self).__name__
