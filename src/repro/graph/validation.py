"""Graph structural checks and simple analyses used across the library."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

import numpy as np

from ..types import VertexId
from .graph import Graph

__all__ = [
    "connected_components",
    "is_connected",
    "largest_component",
    "check_symmetry",
    "degree_histogram",
    "powerlaw_exponent_estimate",
]


def connected_components(graph: Graph) -> List[List[VertexId]]:
    """Connected components as sorted vertex lists, largest first."""
    seen: Set[VertexId] = set()
    comps: List[List[VertexId]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        comp: List[VertexId] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            comp.append(v)
            for u in graph.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        comps.append(sorted(comp))
    comps.sort(key=len, reverse=True)
    return comps


def is_connected(graph: Graph) -> bool:
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def largest_component(graph: Graph) -> List[VertexId]:
    comps = connected_components(graph)
    return comps[0] if comps else []


def check_symmetry(graph: Graph) -> None:
    """Assert the undirected invariant: w(u,v) == w(v,u) for every edge."""
    for u, v, w in graph.edges():
        back = graph.weight(v, u)
        if back != w:
            raise AssertionError(f"asymmetric weights on ({u},{v}): {w} vs {back}")


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def powerlaw_exponent_estimate(graph: Graph, dmin: int = 2) -> Optional[float]:
    """MLE estimate of a power-law degree exponent (Clauset et al. style).

    Returns ``None`` when fewer than 10 vertices have degree >= ``dmin``.
    Used by tests to confirm the scale-free property of generated inputs.
    """
    degrees = np.array([graph.degree(v) for v in graph.vertices()], dtype=float)
    degrees = degrees[degrees >= dmin]
    if degrees.size < 10:
        return None
    return float(1.0 + degrees.size / np.sum(np.log(degrees / (dmin - 0.5))))
