"""Random graph generators.

The paper evaluates on *undirected scale-free graphs* produced with Pajek's
generator.  We provide from-scratch, seeded implementations of the standard
models used as substitutes (see DESIGN.md §2):

* :func:`barabasi_albert` — preferential attachment (scale-free),
* :func:`holme_kim` — preferential attachment with triad formation
  (scale-free *with* community-like clustering),
* :func:`erdos_renyi` — G(n, p) baseline,
* :func:`watts_strogatz` — small-world baseline,
* :func:`planted_partition` — explicit community structure (used to build
  the added-vertex batches that CutEdge-PS exploits).

All generators take an integer ``seed`` and are fully deterministic for a
given seed.  Vertex ids are ``offset .. offset + n - 1``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .graph import Graph

__all__ = [
    "barabasi_albert",
    "holme_kim",
    "erdos_renyi",
    "watts_strogatz",
    "planted_partition",
    "random_weights",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def barabasi_albert(
    n: int, m: int, *, seed: Optional[int] = None, offset: int = 0
) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` vertices; each subsequent vertex attaches
    to ``m`` distinct existing vertices chosen proportionally to degree.

    Parameters
    ----------
    n: total number of vertices (``n > m``).
    m: edges added per new vertex.
    seed: RNG seed.
    offset: first vertex id.
    """
    if m < 1 or n <= m:
        raise ConfigurationError(f"barabasi_albert requires 1 <= m < n, got n={n} m={m}")
    rng = _rng(seed)
    g = Graph()
    for v in range(offset, offset + n):
        g.add_vertex(v)
    # repeated-vertices list implements degree-proportional sampling
    repeated: List[int] = []
    # seed star: vertex offset+m connected to offset..offset+m-1
    hub = offset + m
    for v in range(offset, offset + m):
        g.add_edge(hub, v)
        repeated.extend((hub, v))
    for new in range(offset + m + 1, offset + n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = repeated[int(rng.integers(len(repeated)))]
            targets.add(pick)
        for t in targets:
            g.add_edge(new, t)
            repeated.extend((new, t))
    return g


def holme_kim(
    n: int,
    m: int,
    p_triad: float = 0.5,
    *,
    seed: Optional[int] = None,
    offset: int = 0,
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triad-formation step connects the new vertex to a random neighbor of the
    previously chosen target with probability ``p_triad``, yielding the
    community-like clustering observed in real social networks (paper §I).
    """
    if m < 1 or n <= m:
        raise ConfigurationError(f"holme_kim requires 1 <= m < n, got n={n} m={m}")
    if not 0.0 <= p_triad <= 1.0:
        raise ConfigurationError(f"p_triad must be in [0, 1], got {p_triad}")
    rng = _rng(seed)
    g = Graph()
    for v in range(offset, offset + n):
        g.add_vertex(v)
    repeated: List[int] = []
    hub = offset + m
    for v in range(offset, offset + m):
        g.add_edge(hub, v)
        repeated.extend((hub, v))
    for new in range(offset + m + 1, offset + n):
        added = 0
        last_target: Optional[int] = None
        guard = 0
        while added < m:
            guard += 1
            if guard > 50 * m + 100:  # pathological duplicates; fall back to PA
                last_target = None
            do_triad = (
                last_target is not None
                and rng.random() < p_triad
                and g.degree(last_target) > 0
            )
            if do_triad:
                nbrs = [u for u in g.neighbors(last_target) if u != new]
                candidates = [u for u in nbrs if not g.has_edge(new, u)]
                if candidates:
                    pick = candidates[int(rng.integers(len(candidates)))]
                else:
                    pick = repeated[int(rng.integers(len(repeated)))]
            else:
                pick = repeated[int(rng.integers(len(repeated)))]
            if pick == new or g.has_edge(new, pick):
                continue
            g.add_edge(new, pick)
            repeated.extend((new, pick))
            last_target = pick
            added += 1
    return g


def erdos_renyi(
    n: int, p: float, *, seed: Optional[int] = None, offset: int = 0
) -> Graph:
    """G(n, p) random graph (edge sampling via geometric skipping)."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    g = Graph()
    for v in range(offset, offset + n):
        g.add_vertex(v)
    if p <= 0.0 or n < 2:
        return g
    if p >= 1.0:
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(offset + i, offset + j)
        return g
    # iterate candidate edges in lexicographic order, skipping geometrically
    lp = np.log1p(-p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(np.log1p(-r) / lp)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            g.add_edge(offset + v, offset + w)
    return g


def watts_strogatz(
    n: int, k: int, p_rewire: float, *, seed: Optional[int] = None, offset: int = 0
) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring)."""
    if k % 2 or k < 2 or k >= n:
        raise ConfigurationError(f"k must be even with 2 <= k < n, got k={k} n={n}")
    if not 0.0 <= p_rewire <= 1.0:
        raise ConfigurationError(f"p_rewire must be in [0, 1], got {p_rewire}")
    rng = _rng(seed)
    g = Graph()
    for v in range(offset, offset + n):
        g.add_vertex(v)
    for i in range(n):
        for d in range(1, k // 2 + 1):
            j = (i + d) % n
            g.add_edge(offset + i, offset + j)
    for i in range(n):
        for d in range(1, k // 2 + 1):
            j = (i + d) % n
            if rng.random() < p_rewire:
                u, v = offset + i, offset + j
                # choose a new endpoint avoiding self-loops and multi-edges
                for _ in range(8):  # bounded retries keep the generator O(nk)
                    t = offset + int(rng.integers(n))
                    if t != u and not g.has_edge(u, t):
                        g.remove_edge(u, v)
                        g.add_edge(u, t)
                        break
    return g


def planted_partition(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    *,
    seed: Optional[int] = None,
    offset: int = 0,
) -> Tuple[Graph, List[List[int]]]:
    """Planted-partition (stochastic block) graph with known communities.

    Returns ``(graph, communities)`` where ``communities[i]`` lists the
    vertex ids of block ``i``.  Intra-block edges appear with probability
    ``p_in``, inter-block edges with ``p_out``.
    """
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ConfigurationError(
            f"need 0 <= p_out <= p_in <= 1, got p_in={p_in} p_out={p_out}"
        )
    rng = _rng(seed)
    g = Graph()
    communities: List[List[int]] = []
    nxt = offset
    for size in community_sizes:
        block = list(range(nxt, nxt + int(size)))
        nxt += int(size)
        communities.append(block)
        for v in block:
            g.add_vertex(v)
    n = nxt - offset
    block_of = {}
    for i, block in enumerate(communities):
        for v in block:
            block_of[v] = i
    ids = list(range(offset, offset + n))
    for a_idx in range(n):
        u = ids[a_idx]
        for b_idx in range(a_idx + 1, n):
            v = ids[b_idx]
            p = p_in if block_of[u] == block_of[v] else p_out
            if p > 0.0 and rng.random() < p:
                g.add_edge(u, v)
    return g, communities


def random_weights(
    graph: Graph,
    low: float = 1.0,
    high: float = 10.0,
    *,
    seed: Optional[int] = None,
) -> Graph:
    """Return a copy of ``graph`` with uniform random weights in [low, high)."""
    if not (0 < low <= high):
        raise ConfigurationError(f"need 0 < low <= high, got low={low} high={high}")
    rng = _rng(seed)
    g = Graph()
    for v in graph.vertices():
        g.add_vertex(v)
    for u, v, _w in graph.edges():
        g.add_edge(u, v, float(low + (high - low) * rng.random()))
    return g
