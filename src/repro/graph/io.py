"""Graph and change-stream serialization.

Formats:

* **edge list** — plain text, one ``u v [w]`` per line, ``#`` comments,
  optional ``%%vertices n`` header for isolated vertices.
* **Pajek .net** — the format of the tool the paper used to generate its
  scale-free inputs (``*Vertices`` / ``*Edges`` sections, 1-based ids).
* **JSON change streams** — batches of dynamic changes keyed by RC step.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..errors import ChangeStreamError, GraphError
from .changes import (
    ChangeBatch,
    ChangeStream,
    EdgeAddition,
    EdgeDeletion,
    EdgeReweight,
    VertexAddition,
    VertexDeletion,
)
from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_pajek",
    "read_pajek",
    "write_metis",
    "read_metis",
    "write_change_stream",
    "read_change_stream",
]

_PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: _PathLike) -> None:
    """Write ``graph`` as a text edge list (weights always included)."""
    p = Path(path)
    with p.open("w", encoding="utf-8") as fh:
        fh.write(f"%%vertices {graph.num_vertices}\n")
        for v in graph.vertex_list():
            if graph.degree(v) == 0:
                fh.write(f"%%isolated {v}\n")
        for u, v, w in graph.edge_list():
            fh.write(f"{u} {v} {w!r}\n")


def read_edge_list(path: _PathLike) -> Graph:
    """Read a text edge list written by :func:`write_edge_list` (or any
    whitespace-separated ``u v [w]`` file)."""
    g = Graph()
    p = Path(path)
    with p.open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("%%isolated"):
                g.add_vertex(int(line.split()[1]), exist_ok=True)
                continue
            if line.startswith("%%"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(f"{p}:{lineno}: malformed edge line {line!r}")
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else 1.0
            g.add_vertex(u, exist_ok=True)
            g.add_vertex(v, exist_ok=True)
            g.add_edge(u, v, w)
    return g


def write_pajek(graph: Graph, path: _PathLike) -> None:
    """Write ``graph`` in Pajek ``.net`` format (1-based contiguous ids)."""
    order = graph.vertex_list()
    index = {v: i + 1 for i, v in enumerate(order)}
    p = Path(path)
    with p.open("w", encoding="utf-8") as fh:
        fh.write(f"*Vertices {len(order)}\n")
        for v in order:
            fh.write(f'{index[v]} "{v}"\n')
        fh.write("*Edges\n")
        for u, v, w in graph.edge_list():
            fh.write(f"{index[u]} {index[v]} {w!r}\n")


def read_pajek(path: _PathLike) -> Graph:
    """Read a Pajek ``.net`` file.

    Vertex labels that parse as integers become the vertex ids; otherwise
    the 0-based position is used.
    """
    g = Graph()
    p = Path(path)
    section = None
    labels: Dict[int, int] = {}
    with p.open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            low = line.lower()
            if low.startswith("*vertices"):
                section = "vertices"
                continue
            if low.startswith("*edges") or low.startswith("*arcs"):
                section = "edges"
                continue
            if line.startswith("*"):
                section = None
                continue
            parts = line.split()
            if section == "vertices":
                idx = int(parts[0])
                if len(parts) > 1:
                    label = parts[1].strip('"')
                    try:
                        vid = int(label)
                    except ValueError:
                        vid = idx - 1
                else:
                    vid = idx - 1
                labels[idx] = vid
                g.add_vertex(vid, exist_ok=True)
            elif section == "edges":
                if len(parts) < 2:
                    raise GraphError(f"{p}:{lineno}: malformed edge line {line!r}")
                a, b = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) > 2 else 1.0
                u = labels.get(a, a - 1)
                v = labels.get(b, b - 1)
                g.add_vertex(u, exist_ok=True)
                g.add_vertex(v, exist_ok=True)
                g.add_edge(u, v, w)
    return g


def write_metis(graph: Graph, path: _PathLike) -> None:
    """Write ``graph`` in METIS ``.graph`` format.

    Header ``n m [fmt]``; one line per vertex (1-based ids) listing its
    neighbors — with ``fmt=001`` (edge weights) when any weight differs
    from 1.  The format the paper's DD-phase partitioner consumes.
    """
    order = graph.vertex_list()
    index = {v: i + 1 for i, v in enumerate(order)}
    weighted = any(w != 1.0 for _u, _v, w in graph.edges())
    p = Path(path)
    with p.open("w", encoding="utf-8") as fh:
        header = f"{len(order)} {graph.num_edges}"
        if weighted:
            header += " 001"
        fh.write(header + "\n")
        for v in order:
            parts = []
            for u, w in sorted(graph.neighbor_items(v)):
                parts.append(str(index[u]))
                if weighted:
                    parts.append(repr(float(w)))
            fh.write(" ".join(parts) + "\n")


def read_metis(path: _PathLike) -> Graph:
    """Read a METIS ``.graph`` file (fmt 0 or 001; vertex ids become
    0-based positions)."""
    p = Path(path)
    with p.open("r", encoding="utf-8") as fh:
        # keep blank lines: each represents an isolated vertex; only
        # comment lines are dropped
        lines = [
            ln.strip()
            for ln in fh
            if not ln.lstrip().startswith("%")
        ]
    while lines and not lines[0]:
        lines.pop(0)  # leading blanks before the header carry no meaning
    if not lines:
        raise GraphError(f"{p}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphError(f"{p}: malformed METIS header {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    has_eweights = fmt.endswith("1")
    if fmt not in ("0", "00", "000", "1", "01", "001"):
        raise GraphError(f"{p}: unsupported METIS fmt {fmt!r}")
    if len(lines) - 1 != n:
        raise GraphError(
            f"{p}: header says {n} vertices but {len(lines) - 1} lines follow"
        )
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v, line in enumerate(lines[1:]):
        parts = line.split()
        step = 2 if has_eweights else 1
        for i in range(0, len(parts), step):
            u = int(parts[i]) - 1
            w = float(parts[i + 1]) if has_eweights else 1.0
            if not 0 <= u < n:
                raise GraphError(f"{p}: neighbor id {u + 1} out of range")
            if u != v and not g.has_edge(v, u):
                g.add_edge(v, u, w)
    if g.num_edges != m:
        raise GraphError(
            f"{p}: header says {m} edges but {g.num_edges} were read"
        )
    return g


# ----------------------------------------------------------------------
# change streams
# ----------------------------------------------------------------------

def _batch_to_json(batch: ChangeBatch) -> dict:
    return {
        "vertex_additions": [
            {"vertex": va.vertex, "edges": [[t, w] for t, w in va.edges]}
            for va in batch.vertex_additions
        ],
        "edge_additions": [[e.u, e.v, e.weight] for e in batch.edge_additions],
        "edge_deletions": [[e.u, e.v] for e in batch.edge_deletions],
        "edge_reweights": [[e.u, e.v, e.weight] for e in batch.edge_reweights],
        "vertex_deletions": [d.vertex for d in batch.vertex_deletions],
    }


def _batch_from_json(obj: dict) -> ChangeBatch:
    try:
        return ChangeBatch(
            vertex_additions=[
                VertexAddition(
                    vertex=int(va["vertex"]),
                    edges=tuple((int(t), float(w)) for t, w in va.get("edges", [])),
                )
                for va in obj.get("vertex_additions", [])
            ],
            edge_additions=[
                EdgeAddition(int(u), int(v), float(w))
                for u, v, w in obj.get("edge_additions", [])
            ],
            edge_deletions=[
                EdgeDeletion(int(u), int(v)) for u, v in obj.get("edge_deletions", [])
            ],
            edge_reweights=[
                EdgeReweight(int(u), int(v), float(w))
                for u, v, w in obj.get("edge_reweights", [])
            ],
            vertex_deletions=[
                VertexDeletion(int(v)) for v in obj.get("vertex_deletions", [])
            ],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ChangeStreamError(f"malformed change batch: {exc}") from exc


def write_change_stream(stream: ChangeStream, path: _PathLike) -> None:
    """Serialize a :class:`ChangeStream` to JSON."""
    payload = {str(step): _batch_to_json(batch) for step, batch in stream}
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def read_change_stream(path: _PathLike) -> ChangeStream:
    """Deserialize a :class:`ChangeStream` from JSON."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    stream = ChangeStream()
    for step_str, batch_obj in raw.items():
        stream.schedule(int(step_str), _batch_from_json(batch_obj))
    return stream
