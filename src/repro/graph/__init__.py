"""Graph substrate: dynamic graphs, generators, communities, IO, changes."""

from .changes import (
    ChangeBatch,
    ChangeStream,
    EdgeAddition,
    EdgeDeletion,
    EdgeReweight,
    VertexAddition,
    VertexDeletion,
    batch_from_subgraph,
    diff_graphs,
)
from .cliques import degeneracy_ordering, max_clique, maximal_cliques
from .communities import louvain_communities, modularity
from .generators import (
    barabasi_albert,
    erdos_renyi,
    holme_kim,
    planted_partition,
    random_weights,
    watts_strogatz,
)
from .graph import CSRView, Graph
from .lfr import lfr_benchmark
from .io import (
    read_change_stream,
    read_edge_list,
    read_metis,
    read_pajek,
    write_change_stream,
    write_edge_list,
    write_metis,
    write_pajek,
)
from .validation import (
    connected_components,
    degree_histogram,
    is_connected,
    largest_component,
    powerlaw_exponent_estimate,
)
from .views import LocalSubgraph, extract_local_subgraph, induced_subgraph

__all__ = [
    "Graph",
    "CSRView",
    "LocalSubgraph",
    "extract_local_subgraph",
    "induced_subgraph",
    "barabasi_albert",
    "holme_kim",
    "erdos_renyi",
    "watts_strogatz",
    "planted_partition",
    "lfr_benchmark",
    "random_weights",
    "louvain_communities",
    "maximal_cliques",
    "max_clique",
    "degeneracy_ordering",
    "modularity",
    "connected_components",
    "is_connected",
    "largest_component",
    "degree_histogram",
    "powerlaw_exponent_estimate",
    "ChangeBatch",
    "ChangeStream",
    "VertexAddition",
    "EdgeAddition",
    "EdgeDeletion",
    "EdgeReweight",
    "VertexDeletion",
    "batch_from_subgraph",
    "diff_graphs",
    "read_edge_list",
    "write_edge_list",
    "read_pajek",
    "write_pajek",
    "read_metis",
    "write_metis",
    "read_change_stream",
    "write_change_stream",
]
