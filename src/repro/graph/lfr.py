"""LFR benchmark graphs (Lancichinetti–Fortunato–Radicchi 2008).

The standard generator for realistic community-structured networks:
power-law degree distribution (exponent ``tau1``), power-law community
sizes (exponent ``tau2``), and a mixing parameter ``mu`` — the fraction
of each vertex's edges that leave its community.  The paper's CutEdge-PS
experiments hinge on exactly this structure (scale-free graphs whose new
vertices arrive with community structure), so LFR workloads are the
highest-realism input the benchmark harness can use.

This is a practical from-scratch implementation: truncated power-law
sampling, capacity-feasible community assignment, and configuration-model
wiring (intra-community and inter-community stub matching with collision
retries).  The realized mixing approximates ``mu``; tests assert it lands
within a tolerance band.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import VertexId
from .graph import Graph

__all__ = ["lfr_benchmark"]


def _truncated_powerlaw(
    rng: np.random.Generator, exponent: float, lo: int, hi: int, size: int
) -> np.ndarray:
    """Sample integers in [lo, hi] with P(k) ∝ k^-exponent."""
    ks = np.arange(lo, hi + 1, dtype=np.float64)
    probs = ks ** (-exponent)
    probs /= probs.sum()
    return rng.choice(np.arange(lo, hi + 1), size=size, p=probs)


def _pick_min_degree(
    exponent: float, avg_degree: float, max_degree: int
) -> int:
    """The lo cutoff whose truncated power-law mean best matches avg."""
    best_lo, best_err = 1, float("inf")
    for lo in range(1, max_degree):
        ks = np.arange(lo, max_degree + 1, dtype=np.float64)
        probs = ks ** (-exponent)
        mean = float((ks * probs).sum() / probs.sum())
        err = abs(mean - avg_degree)
        if err < best_err:
            best_err, best_lo = err, lo
        if mean >= avg_degree:
            break  # means grow with lo; past the target it only gets worse
    return best_lo


def lfr_benchmark(
    n: int,
    *,
    tau1: float = 2.5,
    tau2: float = 1.5,
    mu: float = 0.1,
    avg_degree: float = 8.0,
    max_degree: Optional[int] = None,
    min_community: Optional[int] = None,
    max_community: Optional[int] = None,
    seed: Optional[int] = None,
    offset: int = 0,
) -> Tuple[Graph, List[List[VertexId]]]:
    """Generate an LFR benchmark graph.

    Parameters
    ----------
    n: number of vertices.
    tau1: degree power-law exponent (> 1; typical 2-3).
    tau2: community-size power-law exponent (> 1; typical 1-2).
    mu: mixing — target fraction of inter-community edge endpoints.
    avg_degree / max_degree: degree scale (max defaults to ``sqrt(n)*3``).
    min_community / max_community: community size bounds (defaults derive
        from the degree bounds so every vertex fits some community).
    seed / offset: determinism and vertex-id base.

    Returns
    -------
    ``(graph, communities)`` with communities as sorted vertex-id lists.
    """
    if n < 4:
        raise ConfigurationError("LFR needs n >= 4")
    if not (0.0 <= mu <= 1.0):
        raise ConfigurationError(f"mu must be in [0, 1], got {mu}")
    if tau1 <= 1.0 or tau2 <= 1.0:
        raise ConfigurationError("power-law exponents must exceed 1")
    rng = np.random.default_rng(seed)
    max_degree = max_degree or max(int(3 * np.sqrt(n)), 4)
    max_degree = min(max_degree, n - 1)
    lo = _pick_min_degree(tau1, avg_degree, max_degree)
    degrees = _truncated_powerlaw(rng, tau1, lo, max_degree, n)

    # intra-community degree demand per vertex
    intra_deg = np.round((1.0 - mu) * degrees).astype(int)
    intra_deg = np.minimum(intra_deg, degrees)

    min_community = min_community or max(int(intra_deg.max()) + 1, 4)
    max_community = max_community or max(min_community * 4, min_community + 1)
    max_community = min(max_community, n)
    min_community = min(min_community, max_community)

    # community sizes: power law until they cover n, then trim the last
    sizes: List[int] = []
    while sum(sizes) < n:
        sizes.append(
            int(
                _truncated_powerlaw(
                    rng, tau2, min_community, max_community, 1
                )[0]
            )
        )
    sizes[-1] -= sum(sizes) - n
    if sizes[-1] < min_community and len(sizes) > 1:
        # fold an undersized remainder into the first community
        sizes[0] += sizes.pop()
    sizes.sort(reverse=True)
    n_comm = len(sizes)

    # assign vertices: big intra-degree first, into a random community
    # that can host it (size - 1 >= intra degree) with free capacity
    order = np.argsort(-intra_deg)
    community_of = np.full(n, -1, dtype=int)
    remaining = list(sizes)
    for idx in order:
        need = intra_deg[idx]
        candidates = [
            c
            for c in range(n_comm)
            if remaining[c] > 0 and sizes[c] - 1 >= need
        ]
        if not candidates:
            # clip the demand to the largest feasible community
            candidates = [c for c in range(n_comm) if remaining[c] > 0]
            best = max(candidates, key=lambda c: sizes[c])
            intra_deg[idx] = min(need, sizes[best] - 1)
            c = best
        else:
            c = candidates[int(rng.integers(len(candidates)))]
        community_of[idx] = c
        remaining[c] -= 1

    g = Graph()
    ids = np.arange(offset, offset + n)
    for v in ids:
        g.add_vertex(int(v))
    members: List[List[int]] = [[] for _ in range(n_comm)]
    for i in range(n):
        members[community_of[i]].append(i)

    # --- intra-community wiring (configuration model per community) ----
    realized_intra = np.zeros(n, dtype=int)
    for c in range(n_comm):
        stubs: List[int] = []
        for i in members[c]:
            stubs.extend([i] * int(intra_deg[i]))
        rng.shuffle(stubs)
        if len(stubs) % 2:
            stubs.pop()
        misses = 0
        while len(stubs) >= 2 and misses < 10 * max(len(stubs), 1):
            a = stubs.pop()
            b = stubs.pop()
            u, v = int(ids[a]), int(ids[b])
            if a == b or g.has_edge(u, v):
                # reshuffle the colliding stubs back in and retry
                stubs.insert(int(rng.integers(len(stubs) + 1)), a)
                stubs.insert(int(rng.integers(len(stubs) + 1)), b)
                rng.shuffle(stubs)
                misses += 1
                continue
            g.add_edge(u, v)
            realized_intra[a] += 1
            realized_intra[b] += 1

    # --- inter-community wiring -----------------------------------------
    inter_need = degrees - realized_intra
    inter_need = np.maximum(inter_need, 0)
    stubs = []
    for i in range(n):
        stubs.extend([i] * int(inter_need[i]))
    rng.shuffle(stubs)
    misses = 0
    while len(stubs) >= 2 and misses < 10 * n:
        a = stubs.pop()
        b = stubs.pop()
        u, v = int(ids[a]), int(ids[b])
        if (
            a == b
            or community_of[a] == community_of[b]
            or g.has_edge(u, v)
        ):
            # re-queue one endpoint at a random position and retry
            stubs.insert(int(rng.integers(len(stubs) + 1)), a)
            stubs.insert(int(rng.integers(len(stubs) + 1)), b)
            rng.shuffle(stubs)
            misses += 1
            continue
        g.add_edge(u, v)

    communities = [
        sorted(int(ids[i]) for i in members[c]) for c in range(n_comm)
    ]
    communities = [c for c in communities if c]
    communities.sort(key=lambda c: c[0])
    return g, communities
