"""Louvain community detection (from scratch).

The paper builds its added-vertex batches by running Pajek's Louvain method
on a larger graph and extracting whole communities (§V.B.2).  We reproduce
that methodology with our own Louvain implementation: greedy modularity
optimization by local vertex moves, followed by graph aggregation, repeated
until modularity stops improving.

The implementation follows Blondel et al. (2008).  It is deterministic for a
given ``seed`` (the vertex visiting order is shuffled once per level).
Internally the levels operate on plain adjacency dictionaries so aggregated
self-loop weight (intra-community weight collapsed into a super-vertex) can
be tracked exactly, which the public :class:`~repro.graph.graph.Graph` type
deliberately disallows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..types import VertexId
from .graph import Graph

__all__ = ["louvain_communities", "modularity"]

_Adj = Dict[int, Dict[int, float]]


def modularity(graph: Graph, communities: List[List[VertexId]]) -> float:
    """Newman modularity Q of a partition into communities.

    Computed community-by-community as ``sum_c (in_c / m - (tot_c / 2m)^2)``
    where ``in_c`` is the total weight of intra-community edges and
    ``tot_c`` the total weighted degree of the community.
    """
    m = graph.total_weight
    if m <= 0.0:
        return 0.0
    comm_of: Dict[VertexId, int] = {}
    for ci, block in enumerate(communities):
        for v in block:
            comm_of[v] = ci
    internal = np.zeros(len(communities))
    total_deg = np.zeros(len(communities))
    for u, v, w in graph.edges():
        cu, cv = comm_of[u], comm_of[v]
        if cu == cv:
            internal[cu] += w
        total_deg[cu] += w
        total_deg[cv] += w
    return float(np.sum(internal / m - (total_deg / (2.0 * m)) ** 2))


def _one_level(
    adj: _Adj,
    self_w: Dict[int, float],
    m2: float,
    rng: np.random.Generator,
    resolution: float,
) -> Tuple[Dict[int, int], bool]:
    """One local-moving pass; returns (community assignment, improved?)."""
    comm: Dict[int, int] = {}
    deg: Dict[int, float] = {}
    comm_tot: Dict[int, float] = {}
    for i, v in enumerate(sorted(adj)):
        comm[v] = i
        d = sum(adj[v].values()) + 2.0 * self_w.get(v, 0.0)
        deg[v] = d
        comm_tot[i] = d
    order = sorted(adj)
    rng.shuffle(order)
    improved = False
    moved = True
    while moved:
        moved = False
        for v in order:
            cv = comm[v]
            dv = deg[v]
            links: Dict[int, float] = {}
            for u, w in adj[v].items():
                links[comm[u]] = links.get(comm[u], 0.0) + w
            comm_tot[cv] -= dv
            base = links.get(cv, 0.0)
            best_c, best_gain = cv, 0.0
            for c, k_in in links.items():
                if c == cv:
                    continue
                gain = (k_in - base) - resolution * dv * (
                    comm_tot[c] - comm_tot[cv]
                ) / m2
                if gain > best_gain + 1e-12:
                    best_gain, best_c = gain, c
            comm_tot[best_c] = comm_tot.get(best_c, 0.0) + dv
            if best_c != cv:
                comm[v] = best_c
                moved = True
                improved = True
    return comm, improved


def _aggregate(
    adj: _Adj, self_w: Dict[int, float], comm: Dict[int, int]
) -> Tuple[_Adj, Dict[int, float], Dict[int, int]]:
    """Collapse communities to super-vertices.

    Returns ``(meta_adj, meta_self_w, relabel)`` where ``relabel`` maps old
    community ids to dense meta-vertex ids.  Intra-community edge weight and
    member self-loops accumulate into the super-vertex's self-loop weight so
    total weighted degree is conserved across levels.
    """
    labels = sorted(set(comm.values()))
    relabel = {c: i for i, c in enumerate(labels)}
    meta: _Adj = {i: {} for i in range(len(labels))}
    meta_self: Dict[int, float] = {i: 0.0 for i in range(len(labels))}
    for v, nbrs in adj.items():
        cv = relabel[comm[v]]
        meta_self[cv] += self_w.get(v, 0.0)
        for u, w in nbrs.items():
            if u < v:
                continue  # count each undirected edge once
            cu = relabel[comm[u]]
            if cu == cv:
                meta_self[cv] += w
            else:
                meta[cv][cu] = meta[cv].get(cu, 0.0) + w
                meta[cu][cv] = meta[cu].get(cv, 0.0) + w
    return meta, meta_self, relabel


def louvain_communities(
    graph: Graph,
    *,
    seed: Optional[int] = None,
    resolution: float = 1.0,
    max_levels: int = 32,
) -> List[List[VertexId]]:
    """Detect communities with the Louvain method.

    Parameters
    ----------
    graph: the graph to cluster (weights are respected).
    seed: RNG seed for the vertex visiting order.
    resolution: modularity resolution parameter (1.0 = classic).
    max_levels: safety bound on aggregation levels.

    Returns
    -------
    A list of communities, each a sorted list of original vertex ids,
    ordered by their smallest member.  Isolated vertices become singleton
    communities.
    """
    rng = np.random.default_rng(seed)
    adj: _Adj = {v: dict(graph.adjacency_of(v)) for v in graph.vertices()}
    self_w: Dict[int, float] = {}
    m2 = 2.0 * graph.total_weight
    member: Dict[VertexId, int] = {v: v for v in adj}
    if m2 <= 0.0:
        return [[v] for v in graph.vertex_list()]
    for _level in range(max_levels):
        comm, improved = _one_level(adj, self_w, m2, rng, resolution)
        if not improved:
            break
        adj, self_w, relabel = _aggregate(adj, self_w, comm)
        member = {v: relabel[comm[c]] for v, c in member.items()}
        if len(adj) <= 1:
            break
    groups: Dict[int, List[VertexId]] = {}
    for v, c in member.items():
        groups.setdefault(c, []).append(v)
    blocks = [sorted(b) for b in groups.values()]
    blocks.sort(key=lambda b: b[0])
    return blocks
