"""Dynamic-change events and change streams.

The anywhere property of the algorithm is about absorbing a *stream* of
graph changes while the analysis runs.  This module defines the event
vocabulary (vertex/edge additions and deletions, and edge re-weighting —
every dynamic change the paper series [6]-[10] covers) and a
:class:`ChangeStream` that schedules batches of events at recombination
steps, mirroring the paper's experiments ("vertices added at RC0 / RC4 /
RC8", "incremental additions across 10 RC steps").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import ChangeStreamError
from ..types import VertexId, WeightedEdge
from .graph import Graph

__all__ = [
    "VertexAddition",
    "EdgeAddition",
    "EdgeDeletion",
    "EdgeReweight",
    "VertexDeletion",
    "ChangeBatch",
    "ChangeStream",
    "batch_from_subgraph",
    "diff_graphs",
]


@dataclass(frozen=True)
class VertexAddition:
    """A new vertex ``vertex`` with its incident edges.

    ``edges`` lists ``(target, weight)`` pairs; targets may be existing
    vertices or other new vertices in the same batch (intra-batch edges are
    what CutEdge-PS exploits).
    """

    vertex: VertexId
    edges: Tuple[Tuple[VertexId, float], ...] = ()

    @property
    def degree(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class EdgeAddition:
    u: VertexId
    v: VertexId
    weight: float = 1.0


@dataclass(frozen=True)
class EdgeDeletion:
    u: VertexId
    v: VertexId


@dataclass(frozen=True)
class EdgeReweight:
    u: VertexId
    v: VertexId
    weight: float


@dataclass(frozen=True)
class VertexDeletion:
    vertex: VertexId


#: Any single dynamic-change event.
ChangeEvent = (
    VertexAddition | EdgeAddition | EdgeDeletion | EdgeReweight | VertexDeletion
)


@dataclass
class ChangeBatch:
    """A set of changes applied together at one recombination step."""

    vertex_additions: List[VertexAddition] = field(default_factory=list)
    edge_additions: List[EdgeAddition] = field(default_factory=list)
    edge_deletions: List[EdgeDeletion] = field(default_factory=list)
    edge_reweights: List[EdgeReweight] = field(default_factory=list)
    vertex_deletions: List[VertexDeletion] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(
            self.vertex_additions
            or self.edge_additions
            or self.edge_deletions
            or self.edge_reweights
            or self.vertex_deletions
        )

    @property
    def num_events(self) -> int:
        return (
            len(self.vertex_additions)
            + len(self.edge_additions)
            + len(self.edge_deletions)
            + len(self.edge_reweights)
            + len(self.vertex_deletions)
        )

    def new_vertex_ids(self) -> List[VertexId]:
        return [va.vertex for va in self.vertex_additions]

    def new_vertex_graph(self) -> Graph:
        """The graph induced on the *new* vertices and the edges among them.

        This is exactly the graph CutEdge-PS partitions (paper §IV.C.1.a:
        "considers the newly added vertices and the edges between these
        vertices as an independent graph").
        """
        new_ids = set(self.new_vertex_ids())
        g = Graph()
        for v in new_ids:
            g.add_vertex(v)
        for va in self.vertex_additions:
            for t, w in va.edges:
                if t in new_ids and not g.has_edge(va.vertex, t):
                    g.add_edge(va.vertex, t, w)
        return g

    def validate(self, graph: Graph) -> None:
        """Check the batch is consistent with ``graph`` before application.

        * new vertex ids must not collide with existing vertices or repeat,
        * edge targets must be existing vertices or new vertices of this
          batch,
        * deletions/reweights must reference existing edges/vertices.
        """
        new_ids: set[VertexId] = set()
        for va in self.vertex_additions:
            if graph.has_vertex(va.vertex):
                raise ChangeStreamError(
                    f"vertex addition {va.vertex} collides with existing vertex"
                )
            if va.vertex in new_ids:
                raise ChangeStreamError(f"vertex {va.vertex} added twice in batch")
            new_ids.add(va.vertex)
        for va in self.vertex_additions:
            for t, w in va.edges:
                if t == va.vertex:
                    raise ChangeStreamError(f"self-loop on new vertex {t}")
                if not (w > 0):
                    raise ChangeStreamError(f"non-positive weight {w} on new edge")
                if not graph.has_vertex(t) and t not in new_ids:
                    raise ChangeStreamError(
                        f"new vertex {va.vertex} has edge to unknown vertex {t}"
                    )
        for ea in self.edge_additions:
            for end in (ea.u, ea.v):
                if not graph.has_vertex(end) and end not in new_ids:
                    raise ChangeStreamError(f"edge addition references unknown {end}")
            if not (ea.weight > 0):
                raise ChangeStreamError(f"non-positive weight {ea.weight}")
        for ed in self.edge_deletions:
            if not graph.has_edge(ed.u, ed.v):
                raise ChangeStreamError(f"cannot delete missing edge ({ed.u},{ed.v})")
        for er in self.edge_reweights:
            if not graph.has_edge(er.u, er.v):
                raise ChangeStreamError(
                    f"cannot reweight missing edge ({er.u},{er.v})"
                )
            if not (er.weight > 0):
                raise ChangeStreamError(f"non-positive weight {er.weight}")
        for vd in self.vertex_deletions:
            if not graph.has_vertex(vd.vertex) and vd.vertex not in new_ids:
                raise ChangeStreamError(f"cannot delete missing vertex {vd.vertex}")

    def apply_to(self, graph: Graph) -> None:
        """Apply every event to ``graph`` in place (additions first)."""
        for va in self.vertex_additions:
            graph.add_vertex(va.vertex)
        for va in self.vertex_additions:
            for t, w in va.edges:
                if not graph.has_edge(va.vertex, t):
                    graph.add_edge(va.vertex, t, w)
        for ea in self.edge_additions:
            graph.add_edge(ea.u, ea.v, ea.weight)
        for er in self.edge_reweights:
            graph.add_edge(er.u, er.v, er.weight)
        for ed in self.edge_deletions:
            graph.remove_edge(ed.u, ed.v)
        for vd in self.vertex_deletions:
            graph.remove_vertex(vd.vertex)


class ChangeStream:
    """Schedules :class:`ChangeBatch` objects at recombination steps.

    ``stream[step]`` (via :meth:`at_step`) is the batch to incorporate at the
    *end* of recombination step ``step`` (0-based), matching the paper's
    Fig. 1 line 17 ("perform recombination strategy(ies)").
    """

    def __init__(self, batches: Optional[Mapping[int, ChangeBatch]] = None) -> None:
        self._batches: Dict[int, ChangeBatch] = {}
        if batches:
            for step, batch in batches.items():
                self.schedule(step, batch)

    def schedule(self, step: int, batch: ChangeBatch) -> None:
        if step < 0:
            raise ChangeStreamError(f"step must be non-negative, got {step}")
        if step in self._batches:
            raise ChangeStreamError(f"a batch is already scheduled at step {step}")
        self._batches[step] = batch

    def at_step(self, step: int) -> Optional[ChangeBatch]:
        return self._batches.get(step)

    def steps(self) -> List[int]:
        return sorted(self._batches)

    @property
    def last_step(self) -> int:
        """The latest scheduled step, or ``-1`` when empty."""
        return max(self._batches) if self._batches else -1

    def total_events(self) -> int:
        return sum(b.num_events for b in self._batches.values())

    def __bool__(self) -> bool:
        return bool(self._batches)

    def __iter__(self) -> Iterator[Tuple[int, ChangeBatch]]:
        return iter(sorted(self._batches.items()))


def diff_graphs(old: Graph, new: Graph) -> ChangeBatch:
    """The change batch that turns ``old`` into ``new``.

    Useful for replaying externally-evolved snapshots through the anywhere
    machinery: ``diff_graphs(g1, g2).apply_to(g1)`` makes ``g1 == g2``.
    Edges incident to deleted vertices are dropped implicitly by the
    vertex deletion and are not listed as separate edge deletions.
    """
    old_vs = set(old.vertices())
    new_vs = set(new.vertices())
    added_vs = new_vs - old_vs
    deleted_vs = old_vs - new_vs

    additions: List[VertexAddition] = []
    for v in sorted(added_vs):
        edges = tuple(
            (t, w)
            for t, w in sorted(new.adjacency_of(v).items())
            if t > v or t not in added_vs  # record intra-new edges once
        )
        additions.append(VertexAddition(vertex=v, edges=edges))

    edge_adds: List[EdgeAddition] = []
    edge_dels: List[EdgeDeletion] = []
    reweights: List[EdgeReweight] = []
    for u, v, w in new.edges():
        if u in added_vs or v in added_vs:
            continue  # carried by the vertex additions
        if not old.has_edge(u, v):
            edge_adds.append(EdgeAddition(u, v, w))
        elif old.weight(u, v) != w:
            reweights.append(EdgeReweight(u, v, w))
    for u, v, _w in old.edges():
        if u in deleted_vs or v in deleted_vs:
            continue  # dropped with the vertex
        if not new.has_edge(u, v):
            edge_dels.append(EdgeDeletion(u, v))

    return ChangeBatch(
        vertex_additions=additions,
        edge_additions=sorted(edge_adds, key=lambda e: (e.u, e.v)),
        edge_deletions=sorted(edge_dels, key=lambda e: (e.u, e.v)),
        edge_reweights=sorted(reweights, key=lambda e: (e.u, e.v)),
        vertex_deletions=[VertexDeletion(v) for v in sorted(deleted_vs)],
    )


def batch_from_subgraph(
    new_graph: Graph,
    attachment_edges: Iterable[WeightedEdge] = (),
) -> ChangeBatch:
    """Build a vertex-addition batch from a graph of new vertices.

    ``new_graph`` holds the new vertices and intra-batch edges;
    ``attachment_edges`` are ``(new_vertex, existing_vertex, w)`` edges
    anchoring the batch to the current graph.  This mirrors the paper's
    workload construction: communities carved out of a larger graph arrive
    with both their internal structure and their links back to the base.
    """
    per_vertex: Dict[VertexId, List[Tuple[VertexId, float]]] = {
        v: [] for v in new_graph.vertices()
    }
    for u, v, w in new_graph.edges():
        # record each intra-batch edge once, on the smaller endpoint
        per_vertex[u].append((v, w))
    for nv, ev, w in attachment_edges:
        if nv not in per_vertex:
            raise ChangeStreamError(
                f"attachment edge references unknown new vertex {nv}"
            )
        per_vertex[nv].append((ev, w))
    additions = [
        VertexAddition(vertex=v, edges=tuple(edges))
        for v, edges in sorted(per_vertex.items())
    ]
    return ChangeBatch(vertex_additions=additions)
