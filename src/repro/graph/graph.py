"""Dynamic weighted undirected graph.

This is the in-memory graph substrate the rest of the library builds on.
It is designed for the access patterns of the anytime-anywhere pipeline:

* cheap incremental mutation (vertex/edge additions and deletions are the
  whole point of the paper),
* fast neighborhood iteration for partitioners and relaxations,
* zero-copy-ish export to SciPy CSR for bulk shortest-path computations.

Vertices are integer ids.  The structure is undirected: ``add_edge(u, v, w)``
makes ``v`` a neighbor of ``u`` and vice versa, and the edge is reported once
by :meth:`Graph.edges` with ``u <= v``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import (
    DuplicateVertex,
    EdgeNotFound,
    InvalidWeight,
    VertexNotFound,
)
from ..types import VertexId, WeightedEdge

__all__ = ["Graph", "CSRView"]


class CSRView:
    """A CSR snapshot of a :class:`Graph` restricted to an ordered vertex set.

    Attributes
    ----------
    matrix:
        ``scipy.sparse.csr_matrix`` of edge weights, shape ``(k, k)``.
    order:
        The vertex ids in row/column order.
    index:
        Mapping from vertex id to row index (inverse of ``order``).
    """

    __slots__ = ("matrix", "order", "index")

    def __init__(self, matrix: sp.csr_matrix, order: List[VertexId]) -> None:
        self.matrix = matrix
        self.order = order
        self.index = {v: i for i, v in enumerate(order)}

    def __len__(self) -> int:
        return len(self.order)


class Graph:
    """A mutable weighted undirected graph keyed by integer vertex ids."""

    __slots__ = ("_adj", "_num_edges", "_total_weight", "_csr_cache", "_csr_dirty", "_csr_added")

    def __init__(self) -> None:
        self._adj: Dict[VertexId, Dict[VertexId, float]] = {}
        self._num_edges = 0
        self._total_weight = 0.0
        # Incremental CSR cache.  ``_csr_cache`` holds the most recent
        # :meth:`to_csr` result; dirty-tracking is active only while it is
        # set, so graphs that never export pay nothing on mutation.
        self._csr_cache: Optional[CSRView] = None
        self._csr_dirty: Set[VertexId] = set()
        self._csr_added: Set[VertexId] = set()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int] | Tuple[int, int, float]],
        vertices: Optional[Iterable[VertexId]] = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` or ``(u, v, w)``.

        ``vertices`` may list additional isolated vertices to include.
        """
        g = cls()
        if vertices is not None:
            for v in vertices:
                g.add_vertex(int(v), exist_ok=True)
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = e  # type: ignore[misc]
            g.add_vertex(int(u), exist_ok=True)
            g.add_vertex(int(v), exist_ok=True)
            g.add_edge(int(u), int(v), float(w))
        return g

    def copy(self) -> "Graph":
        """Return a deep copy (adjacency dictionaries are duplicated)."""
        g = Graph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        g._total_weight = self._total_weight
        return g

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(self, v: VertexId, *, exist_ok: bool = False) -> None:
        """Add an isolated vertex.

        Raises :class:`DuplicateVertex` if present, unless ``exist_ok``.
        """
        if v in self._adj:
            if exist_ok:
                return
            raise DuplicateVertex(f"vertex {v} already exists")
        self._adj[v] = {}
        if self._csr_cache is not None:
            self._csr_added.add(v)

    def add_vertices(self, vertices: Iterable[VertexId]) -> None:
        """Add multiple isolated vertices (existing ids are tolerated)."""
        for v in vertices:
            self.add_vertex(v, exist_ok=True)

    def remove_vertex(self, v: VertexId) -> List[WeightedEdge]:
        """Remove ``v`` and all incident edges; return the removed edges."""
        try:
            nbrs = self._adj.pop(v)
        except KeyError:
            raise VertexNotFound(v) from None
        removed: List[WeightedEdge] = []
        for u, w in nbrs.items():
            if u == v:
                continue  # self-loops are disallowed at insertion time
            del self._adj[u][v]
            removed.append((v, u, w))
            self._num_edges -= 1
            self._total_weight -= w
        self._drop_csr_cache()
        return removed

    def has_vertex(self, v: VertexId) -> bool:
        return v in self._adj

    def __contains__(self, v: VertexId) -> bool:
        return v in self._adj

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex ids (insertion order)."""
        return iter(self._adj)

    def vertex_list(self) -> List[VertexId]:
        """Sorted list of vertex ids."""
        return sorted(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    def max_vertex_id(self) -> int:
        """Largest vertex id, or ``-1`` for an empty graph."""
        return max(self._adj) if self._adj else -1

    def next_vertex_id(self) -> int:
        """The smallest id guaranteed to be unused (``max + 1``)."""
        return self.max_vertex_id() + 1

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: VertexId, v: VertexId, weight: float = 1.0) -> None:
        """Add or overwrite the undirected edge ``(u, v)``.

        Both endpoints must already exist (use :meth:`add_vertex` /
        :meth:`from_edges` to create them).  Self-loops are rejected because
        they never affect shortest paths.  Weights must be positive finite.
        """
        if u == v:
            raise InvalidWeight(f"self-loop on vertex {u} is not allowed")
        if not (weight > 0.0 and np.isfinite(weight)):
            raise InvalidWeight(f"edge weight must be positive finite, got {weight}")
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        existing = self._adj[u].get(v)
        if existing is None:
            self._num_edges += 1
            self._total_weight += weight
        else:
            self._total_weight += weight - existing
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        if self._csr_cache is not None:
            self._csr_dirty.add(u)
            self._csr_dirty.add(v)

    def add_edges(
        self, edges: Iterable[Tuple[int, int] | Tuple[int, int, float]]
    ) -> None:
        """Add many edges; missing endpoints are created automatically."""
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = e  # type: ignore[misc]
            self.add_vertex(int(u), exist_ok=True)
            self.add_vertex(int(v), exist_ok=True)
            self.add_edge(int(u), int(v), float(w))

    def remove_edge(self, u: VertexId, v: VertexId) -> float:
        """Remove the edge ``(u, v)``; return its weight."""
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        try:
            w = self._adj[u].pop(v)
        except KeyError:
            raise EdgeNotFound(u, v) from None
        del self._adj[v][u]
        self._num_edges -= 1
        self._total_weight -= w
        self._drop_csr_cache()
        return w

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def weight(self, u: VertexId, v: VertexId) -> float:
        """Weight of edge ``(u, v)``; raises :class:`EdgeNotFound`."""
        try:
            return self._adj[u][v]
        except KeyError:
            if u not in self._adj:
                raise VertexNotFound(u) from None
            raise EdgeNotFound(u, v) from None

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over each undirected edge once, as ``(u, v, w)``, u <= v."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u <= v:
                    yield (u, v, w)

    def edge_list(self) -> List[WeightedEdge]:
        """Sorted list of edges as ``(u, v, w)`` with ``u <= v``."""
        return sorted(self.edges())

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (each undirected edge counted once)."""
        return self._total_weight

    # ------------------------------------------------------------------
    # neighborhoods
    # ------------------------------------------------------------------
    def neighbors(self, v: VertexId) -> Iterator[VertexId]:
        try:
            return iter(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def neighbor_items(self, v: VertexId) -> Iterator[Tuple[VertexId, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``v``."""
        try:
            return iter(self._adj[v].items())
        except KeyError:
            raise VertexNotFound(v) from None

    def adjacency_of(self, v: VertexId) -> Dict[VertexId, float]:
        """A *copy* of the neighbor->weight map of ``v``."""
        try:
            return dict(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def degree(self, v: VertexId) -> int:
        try:
            return len(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def weighted_degree(self, v: VertexId) -> float:
        try:
            return float(sum(self._adj[v].values()))
        except KeyError:
            raise VertexNotFound(v) from None

    def degrees(self) -> Dict[VertexId, int]:
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    # ------------------------------------------------------------------
    # bulk export
    # ------------------------------------------------------------------
    def to_csr(self, order: Optional[Sequence[VertexId]] = None) -> CSRView:
        """Export (a sub-view of) the graph as a SciPy CSR matrix.

        The most recent export is cached and maintained incrementally:

        * re-exporting an unchanged graph with the same ``order`` returns
          the cached :class:`CSRView` object outright;
        * after vertex additions (and edge additions among them), an
          ``order`` that extends the cached order only builds the new and
          dirty rows, splicing the untouched row slices from the cache;
        * edge/vertex deletions and any non-prefix ``order`` fall back to
          a full rebuild (which re-primes the cache).

        Returned views are immutable snapshots: incremental rebuilds
        allocate fresh arrays, so views handed out earlier never observe
        later mutations.  Both paths produce bitwise-identical matrices.

        Parameters
        ----------
        order:
            The vertices to include, in row/column order.  Defaults to
            :meth:`vertex_list`.  Edges with an endpoint outside ``order``
            are dropped (this is exactly what a local sub-graph export
            needs).
        """
        if order is None:
            ordered = self.vertex_list()
        else:
            ordered = list(order)
        index = {v: i for i, v in enumerate(ordered)}
        if len(index) != len(ordered):
            raise ValueError("duplicate vertices in requested order")
        for v in ordered:
            if v not in self._adj:
                raise VertexNotFound(v)
        cached = self._csr_cache
        if cached is not None:
            view = self._csr_from_cache(cached, ordered, index)
            if view is not None:
                return view
        view = self._csr_build(ordered, index)
        self._csr_cache = view
        self._csr_dirty.clear()
        self._csr_added.clear()
        return view

    def _drop_csr_cache(self) -> None:
        """Forget the cached CSR export (deletions invalidate wholesale)."""
        if self._csr_cache is not None:
            self._csr_cache = None
            self._csr_dirty.clear()
            self._csr_added.clear()

    def _csr_row(
        self, v: VertexId, index: Dict[VertexId, int]
    ) -> List[Tuple[int, float]]:
        """Column-sorted ``(col, weight)`` pairs of row ``v`` under ``index``."""
        return sorted(
            (index[u], w) for u, w in self._adj[v].items() if u in index
        )

    def _csr_build(self, ordered: List[VertexId], index: Dict[VertexId, int]) -> CSRView:
        """Full from-scratch CSR construction (the oracle for the cache)."""
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for v in ordered:
            i = index[v]
            for u, w in self._adj[v].items():
                j = index.get(u)
                if j is not None:
                    rows.append(i)
                    cols.append(j)
                    vals.append(w)
        n = len(ordered)
        mat = sp.csr_matrix(
            (np.asarray(vals, dtype=np.float64), (rows, cols)), shape=(n, n)
        )
        return CSRView(mat, ordered)

    def _csr_from_cache(
        self,
        cached: CSRView,
        ordered: List[VertexId],
        index: Dict[VertexId, int],
    ) -> Optional[CSRView]:
        """Serve ``to_csr(ordered)`` from ``cached``, or ``None`` to rebuild.

        Valid only when ``ordered`` extends ``cached.order`` and every
        appended vertex was added after the snapshot: then a clean cached
        row can only have changed via an edge touching it, which marked
        the row dirty (deletions dropped the cache entirely).
        """
        k = len(cached.order)
        n = len(ordered)
        if k == 0 or n < k or ordered[:k] != cached.order:
            return None
        appended = ordered[k:]
        if any(v not in self._csr_added for v in appended):
            return None
        rebuild = self._csr_dirty.intersection(index)
        if n == k and not rebuild:
            return cached
        rebuild.update(appended)
        old = cached.matrix
        idx_dtype = old.indices.dtype
        parts_idx: List[np.ndarray] = []
        parts_dat: List[np.ndarray] = []
        for v in ordered:
            if v in rebuild:
                pairs = self._csr_row(v, index)
                parts_idx.append(
                    np.fromiter((j for j, _ in pairs), dtype=idx_dtype, count=len(pairs))
                )
                parts_dat.append(
                    np.fromiter((w for _, w in pairs), dtype=np.float64, count=len(pairs))
                )
            else:
                i = cached.index[v]
                lo, hi = old.indptr[i], old.indptr[i + 1]
                parts_idx.append(old.indices[lo:hi])
                parts_dat.append(old.data[lo:hi])
        lengths = np.fromiter((len(p) for p in parts_idx), dtype=np.int64, count=n)
        nnz = int(lengths.sum())
        if nnz > np.iinfo(idx_dtype).max:
            return None  # index dtype would differ from a fresh build
        indptr = np.zeros(n + 1, dtype=old.indptr.dtype)
        indptr[1:] = np.cumsum(lengths)
        indices = (
            np.concatenate(parts_idx) if nnz else np.empty(0, dtype=idx_dtype)
        )
        data = (
            np.concatenate(parts_dat) if nnz else np.empty(0, dtype=np.float64)
        )
        mat = sp.csr_matrix((data, indices, indptr), shape=(n, n))
        view = CSRView(mat, ordered)
        self._csr_cache = view
        self._csr_dirty.difference_update(rebuild)
        self._csr_added.difference_update(index)
        return view

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(self._adj[v] == other._adj[v] for v in self._adj)

    def __hash__(self) -> int:  # mutable container: identity hash
        return id(self)
