"""Dynamic weighted undirected graph.

This is the in-memory graph substrate the rest of the library builds on.
It is designed for the access patterns of the anytime-anywhere pipeline:

* cheap incremental mutation (vertex/edge additions and deletions are the
  whole point of the paper),
* fast neighborhood iteration for partitioners and relaxations,
* zero-copy-ish export to SciPy CSR for bulk shortest-path computations.

Vertices are integer ids.  The structure is undirected: ``add_edge(u, v, w)``
makes ``v`` a neighbor of ``u`` and vice versa, and the edge is reported once
by :meth:`Graph.edges` with ``u <= v``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..errors import (
    DuplicateVertex,
    EdgeNotFound,
    InvalidWeight,
    VertexNotFound,
)
from ..types import VertexId, WeightedEdge

__all__ = ["Graph", "CSRView"]


class CSRView:
    """A CSR snapshot of a :class:`Graph` restricted to an ordered vertex set.

    Attributes
    ----------
    matrix:
        ``scipy.sparse.csr_matrix`` of edge weights, shape ``(k, k)``.
    order:
        The vertex ids in row/column order.
    index:
        Mapping from vertex id to row index (inverse of ``order``).
    """

    __slots__ = ("matrix", "order", "index")

    def __init__(self, matrix: sp.csr_matrix, order: List[VertexId]) -> None:
        self.matrix = matrix
        self.order = order
        self.index = {v: i for i, v in enumerate(order)}

    def __len__(self) -> int:
        return len(self.order)


class Graph:
    """A mutable weighted undirected graph keyed by integer vertex ids."""

    __slots__ = ("_adj", "_num_edges", "_total_weight")

    def __init__(self) -> None:
        self._adj: Dict[VertexId, Dict[VertexId, float]] = {}
        self._num_edges = 0
        self._total_weight = 0.0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int] | Tuple[int, int, float]],
        vertices: Optional[Iterable[VertexId]] = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` or ``(u, v, w)``.

        ``vertices`` may list additional isolated vertices to include.
        """
        g = cls()
        if vertices is not None:
            for v in vertices:
                g.add_vertex(int(v), exist_ok=True)
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = e  # type: ignore[misc]
            g.add_vertex(int(u), exist_ok=True)
            g.add_vertex(int(v), exist_ok=True)
            g.add_edge(int(u), int(v), float(w))
        return g

    def copy(self) -> "Graph":
        """Return a deep copy (adjacency dictionaries are duplicated)."""
        g = Graph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        g._total_weight = self._total_weight
        return g

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(self, v: VertexId, *, exist_ok: bool = False) -> None:
        """Add an isolated vertex.

        Raises :class:`DuplicateVertex` if present, unless ``exist_ok``.
        """
        if v in self._adj:
            if exist_ok:
                return
            raise DuplicateVertex(f"vertex {v} already exists")
        self._adj[v] = {}

    def add_vertices(self, vertices: Iterable[VertexId]) -> None:
        """Add multiple isolated vertices (existing ids are tolerated)."""
        for v in vertices:
            self.add_vertex(v, exist_ok=True)

    def remove_vertex(self, v: VertexId) -> List[WeightedEdge]:
        """Remove ``v`` and all incident edges; return the removed edges."""
        try:
            nbrs = self._adj.pop(v)
        except KeyError:
            raise VertexNotFound(v) from None
        removed: List[WeightedEdge] = []
        for u, w in nbrs.items():
            if u == v:
                continue  # self-loops are disallowed at insertion time
            del self._adj[u][v]
            removed.append((v, u, w))
            self._num_edges -= 1
            self._total_weight -= w
        return removed

    def has_vertex(self, v: VertexId) -> bool:
        return v in self._adj

    def __contains__(self, v: VertexId) -> bool:
        return v in self._adj

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex ids (insertion order)."""
        return iter(self._adj)

    def vertex_list(self) -> List[VertexId]:
        """Sorted list of vertex ids."""
        return sorted(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    def max_vertex_id(self) -> int:
        """Largest vertex id, or ``-1`` for an empty graph."""
        return max(self._adj) if self._adj else -1

    def next_vertex_id(self) -> int:
        """The smallest id guaranteed to be unused (``max + 1``)."""
        return self.max_vertex_id() + 1

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: VertexId, v: VertexId, weight: float = 1.0) -> None:
        """Add or overwrite the undirected edge ``(u, v)``.

        Both endpoints must already exist (use :meth:`add_vertex` /
        :meth:`from_edges` to create them).  Self-loops are rejected because
        they never affect shortest paths.  Weights must be positive finite.
        """
        if u == v:
            raise InvalidWeight(f"self-loop on vertex {u} is not allowed")
        if not (weight > 0.0 and np.isfinite(weight)):
            raise InvalidWeight(f"edge weight must be positive finite, got {weight}")
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        existing = self._adj[u].get(v)
        if existing is None:
            self._num_edges += 1
            self._total_weight += weight
        else:
            self._total_weight += weight - existing
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def add_edges(
        self, edges: Iterable[Tuple[int, int] | Tuple[int, int, float]]
    ) -> None:
        """Add many edges; missing endpoints are created automatically."""
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = e  # type: ignore[misc]
            self.add_vertex(int(u), exist_ok=True)
            self.add_vertex(int(v), exist_ok=True)
            self.add_edge(int(u), int(v), float(w))

    def remove_edge(self, u: VertexId, v: VertexId) -> float:
        """Remove the edge ``(u, v)``; return its weight."""
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        try:
            w = self._adj[u].pop(v)
        except KeyError:
            raise EdgeNotFound(u, v) from None
        del self._adj[v][u]
        self._num_edges -= 1
        self._total_weight -= w
        return w

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def weight(self, u: VertexId, v: VertexId) -> float:
        """Weight of edge ``(u, v)``; raises :class:`EdgeNotFound`."""
        try:
            return self._adj[u][v]
        except KeyError:
            if u not in self._adj:
                raise VertexNotFound(u) from None
            raise EdgeNotFound(u, v) from None

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over each undirected edge once, as ``(u, v, w)``, u <= v."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u <= v:
                    yield (u, v, w)

    def edge_list(self) -> List[WeightedEdge]:
        """Sorted list of edges as ``(u, v, w)`` with ``u <= v``."""
        return sorted(self.edges())

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (each undirected edge counted once)."""
        return self._total_weight

    # ------------------------------------------------------------------
    # neighborhoods
    # ------------------------------------------------------------------
    def neighbors(self, v: VertexId) -> Iterator[VertexId]:
        try:
            return iter(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def neighbor_items(self, v: VertexId) -> Iterator[Tuple[VertexId, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``v``."""
        try:
            return iter(self._adj[v].items())
        except KeyError:
            raise VertexNotFound(v) from None

    def adjacency_of(self, v: VertexId) -> Dict[VertexId, float]:
        """A *copy* of the neighbor->weight map of ``v``."""
        try:
            return dict(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def degree(self, v: VertexId) -> int:
        try:
            return len(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def weighted_degree(self, v: VertexId) -> float:
        try:
            return float(sum(self._adj[v].values()))
        except KeyError:
            raise VertexNotFound(v) from None

    def degrees(self) -> Dict[VertexId, int]:
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    # ------------------------------------------------------------------
    # bulk export
    # ------------------------------------------------------------------
    def to_csr(self, order: Optional[Sequence[VertexId]] = None) -> CSRView:
        """Export (a sub-view of) the graph as a SciPy CSR matrix.

        Parameters
        ----------
        order:
            The vertices to include, in row/column order.  Defaults to
            :meth:`vertex_list`.  Edges with an endpoint outside ``order``
            are dropped (this is exactly what a local sub-graph export
            needs).
        """
        if order is None:
            ordered = self.vertex_list()
        else:
            ordered = list(order)
        index = {v: i for i, v in enumerate(ordered)}
        if len(index) != len(ordered):
            raise ValueError("duplicate vertices in requested order")
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for v in ordered:
            if v not in self._adj:
                raise VertexNotFound(v)
            i = index[v]
            for u, w in self._adj[v].items():
                j = index.get(u)
                if j is not None:
                    rows.append(i)
                    cols.append(j)
                    vals.append(w)
        n = len(ordered)
        mat = sp.csr_matrix(
            (np.asarray(vals, dtype=np.float64), (rows, cols)), shape=(n, n)
        )
        return CSRView(mat, ordered)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(self._adj[v] == other._adj[v] for v in self._adj)

    def __hash__(self) -> int:  # mutable container: identity hash
        return id(self)
