"""Sub-graph extraction utilities.

The DD phase hands each simulated processor a *local sub-graph*: the induced
graph on its assigned vertices **plus** the cut-edges to external boundary
vertices (paper §IV.A: "B_i is the set of external boundary vertices for
processor p_i; external boundary vertices act as bridges that connect the
neighboring sub-graphs to the vertices in the local sub-graph").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..types import VertexId
from .graph import Graph

__all__ = ["induced_subgraph", "LocalSubgraph", "extract_local_subgraph"]


def induced_subgraph(graph: Graph, vertices: Iterable[VertexId]) -> Graph:
    """The sub-graph induced on ``vertices`` (edges with both endpoints in)."""
    keep: Set[VertexId] = set(vertices)
    sub = Graph()
    for v in keep:
        sub.add_vertex(v, exist_ok=True)
    for v in keep:
        for u, w in graph.neighbor_items(v):
            if u in keep and v <= u:
                sub.add_edge(v, u, w)
    return sub


@dataclass
class LocalSubgraph:
    """The per-processor view produced by domain decomposition.

    Attributes
    ----------
    owned:
        Vertices assigned to this processor (``V_i`` in the paper).
    local_graph:
        Induced graph on ``owned`` (internal edges only).
    cut_edges:
        Edges ``(u, x, w)`` with ``u`` owned here and ``x`` owned elsewhere.
    external_boundary:
        ``B_i``: the set of remote endpoints of cut edges.
    local_boundary:
        Owned vertices incident to at least one cut edge (``b_i`` counts
        these in the paper's analysis).
    """

    owned: List[VertexId]
    local_graph: Graph
    cut_edges: List[Tuple[VertexId, VertexId, float]] = field(default_factory=list)
    external_boundary: FrozenSet[VertexId] = frozenset()
    local_boundary: FrozenSet[VertexId] = frozenset()

    @property
    def cut_size(self) -> int:
        """Number of cut edges incident to this sub-graph."""
        return len(self.cut_edges)

    def cut_edges_by_local(self) -> Dict[VertexId, List[Tuple[VertexId, float]]]:
        """Group cut edges by their *local* endpoint: ``u -> [(x, w), ...]``."""
        grouped: Dict[VertexId, List[Tuple[VertexId, float]]] = {}
        for u, x, w in self.cut_edges:
            grouped.setdefault(u, []).append((x, w))
        return grouped


def extract_local_subgraph(
    graph: Graph, owned: Iterable[VertexId], owner_of: Dict[VertexId, int], rank: int
) -> LocalSubgraph:
    """Build the :class:`LocalSubgraph` for ``rank``.

    Parameters
    ----------
    graph:
        The full graph.
    owned:
        Vertices assigned to ``rank``.
    owner_of:
        Global assignment ``vertex -> rank`` (used to classify cut edges).
    rank:
        This processor's rank.
    """
    owned_list = sorted(set(owned))
    owned_set = set(owned_list)
    local = Graph()
    for v in owned_list:
        local.add_vertex(v)
    cut: List[Tuple[VertexId, VertexId, float]] = []
    ext: Set[VertexId] = set()
    loc_bnd: Set[VertexId] = set()
    for v in owned_list:
        for u, w in graph.neighbor_items(v):
            if u in owned_set:
                if v <= u:
                    local.add_edge(v, u, w)
            else:
                if owner_of.get(u, rank) == rank:
                    # Inconsistent assignment: neighbor claims to be ours but
                    # was not listed in ``owned``.
                    raise ValueError(
                        f"vertex {u} assigned to rank {rank} but absent from its"
                        " owned set"
                    )
                cut.append((v, u, w))
                ext.add(u)
                loc_bnd.add(v)
    return LocalSubgraph(
        owned=owned_list,
        local_graph=local,
        cut_edges=cut,
        external_boundary=frozenset(ext),
        local_boundary=frozenset(loc_bnd),
    )
