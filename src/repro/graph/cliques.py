"""Maximal clique enumeration (Bron–Kerbosch with pivoting).

The anytime-anywhere methodology was also applied to maximal clique
enumeration (Pan & Santos 2008, the paper's ref [8]).  This module
provides the enumeration substrate: Bron–Kerbosch with Tomita pivoting
over a degeneracy ordering of the outer level — the standard
output-sensitive algorithm for sparse social graphs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..types import VertexId
from .graph import Graph

__all__ = ["maximal_cliques", "max_clique", "degeneracy_ordering"]


def degeneracy_ordering(graph: Graph) -> List[VertexId]:
    """Vertices in degeneracy order (repeatedly remove a minimum-degree
    vertex); the reverse order bounds Bron–Kerbosch's outer candidates by
    the graph's degeneracy."""
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    buckets: Dict[int, Set[VertexId]] = {}
    for v, d in degrees.items():
        buckets.setdefault(d, set()).add(v)
    order: List[VertexId] = []
    removed: Set[VertexId] = set()
    n = graph.num_vertices
    d = 0
    while len(order) < n:
        while d not in buckets or not buckets[d]:
            d += 1
        v = buckets[d].pop()
        order.append(v)
        removed.add(v)
        for u in graph.neighbors(v):
            if u in removed:
                continue
            old = degrees[u]
            buckets[old].discard(u)
            degrees[u] = old - 1
            buckets.setdefault(old - 1, set()).add(u)
        d = max(d - 1, 0)
    return order


def _bron_kerbosch_pivot(
    adj: Dict[VertexId, Set[VertexId]],
    r: Set[VertexId],
    p: Set[VertexId],
    x: Set[VertexId],
) -> Iterator[List[VertexId]]:
    if not p and not x:
        yield sorted(r)
        return
    # Tomita pivot: the vertex of P ∪ X with the most neighbors in P
    pivot = max(p | x, key=lambda u: len(adj[u] & p))
    for v in sorted(p - adj[pivot]):
        yield from _bron_kerbosch_pivot(
            adj, r | {v}, p & adj[v], x & adj[v]
        )
        p = p - {v}
        x = x | {v}


def maximal_cliques(graph: Graph) -> Iterator[List[VertexId]]:
    """Enumerate every maximal clique (each as a sorted vertex list).

    Isolated vertices yield singleton cliques.  Uses degeneracy ordering
    for the outer loop and pivoting inside.
    """
    adj: Dict[VertexId, Set[VertexId]] = {
        v: set(graph.neighbors(v)) for v in graph.vertices()
    }
    order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    for v in order:
        later = {u for u in adj[v] if position[u] > position[v]}
        earlier = {u for u in adj[v] if position[u] < position[v]}
        yield from _bron_kerbosch_pivot(adj, {v}, later, earlier)


def max_clique(graph: Graph) -> List[VertexId]:
    """A maximum clique (largest maximal clique; empty for empty graphs)."""
    best: List[VertexId] = []
    for c in maximal_cliques(graph):
        if len(c) > len(best):
            best = c
    return best
