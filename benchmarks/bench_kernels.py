"""Micro-benchmarks of the hot worker kernels (real wall time).

These are classic pytest-benchmark timing loops over the three kernels
that dominate the pipeline's Python runtime: the IA-phase local APSP, the
per-edge broadcast relaxation, and the boundary-DV cut relaxation.
"""

import numpy as np

from repro.graph import barabasi_albert, extract_local_subgraph
from repro.model import DEFAULT_COST
from repro.partition import MultilevelPartitioner
from repro.runtime import GlobalIndex, Worker


def build(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    part = MultilevelPartitioner(seed=scale.seed).partition(
        graph, scale.nprocs
    )
    index = GlobalIndex(graph.vertex_list())
    w = Worker(0, scale.nprocs, index, DEFAULT_COST)
    sub = extract_local_subgraph(graph, part.block(0), part.assignment, 0)
    w.load_subgraph(sub)
    return graph, w


def test_initial_approximation_kernel(benchmark, scale):
    graph, w = build(scale)
    benchmark(w.run_initial_approximation)


def test_edge_row_relaxation_kernel(benchmark, scale):
    _graph, w = build(scale)
    w.run_initial_approximation()
    w.propagate_local()
    a, b = w.owned[0], w.owned[-1]
    row_a, row_b = w.dv_row(a), w.dv_row(b)

    benchmark(lambda: w.relax_with_edge_rows(a, row_a, b, row_b, 0.5))


def test_cut_relaxation_kernel(benchmark, scale):
    _graph, w = build(scale)
    w.run_initial_approximation()
    w.propagate_local()
    rng = np.random.default_rng(1)
    ext_rows = {
        x: rng.uniform(1.0, 10.0, size=w.n_cols) for x in w.cut_by_ext
    }

    def relax():
        w.receive_rows(ext_rows)
        w.relax_cut_edges()

    benchmark(relax)


def test_dv_gather_kernel(benchmark, scale):
    """Row extraction for Repartition-S migration."""
    _graph, w = build(scale)
    w.run_initial_approximation()
    benchmark(lambda: w.extract_rows(w.owned))
