"""Figure 7 — new cut edges created by each strategy.

Paper: counting the cut edges among the newly added edges after each
strategy's placement: Repartition-S < CutEdge-PS < RoundRobin-PS — the
structural explanation for CutEdge-PS's (modest) runtime advantage.
"""

from repro.bench import figure5, figure7

COLUMNS = ["batch_size", "strategy", "new_cut_edges"]


def test_figure7(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: figure7(scale, rows=figure5(scale)), rounds=1, iterations=1
    )
    emit("figure7", rows, COLUMNS)

    def cuts(strategy, size):
        return next(
            r["new_cut_edges"]
            for r in rows
            if r["strategy"] == strategy and r["batch_size"] == size
        )

    # the paper's ordering must hold for every non-trivial batch size
    for size in scale.batch_sizes:
        if size < 16:
            continue  # tiny batches are noise-dominated
        assert cuts("repartition", size) <= cuts("cutedge", size), size
        assert cuts("cutedge", size) <= cuts("roundrobin", size), size
