"""Ablation — the anywhere edge-change family (paper refs [7][9][10]).

The vertex-addition paper builds on the series' earlier edge-change
algorithms: edge additions [9], edge deletions [10], and weight changes
[7].  This bench compares the anywhere cost of each change type against
the baseline restart on the same graph, quantifying the asymmetry the
protocols imply: additions are monotone relax-only (cheap), deletions pay
an invalidation + re-derivation pass (dearer), and both beat restarting.
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig, ChangeStream
from repro.graph import ChangeBatch, barabasi_albert
from repro.graph.changes import EdgeAddition, EdgeDeletion, EdgeReweight

COLUMNS = ["change", "modeled_minutes", "rc_steps"]

N_CHANGES = 6


def _run(graph, batch, scale):
    engine = AnytimeAnywhereCloseness(
        graph,
        AnytimeConfig(nprocs=scale.nprocs, seed=scale.seed,
                      collect_snapshots=False),
    )
    engine.setup()
    result = engine.run(changes=ChangeStream({2: batch}), strategy="roundrobin")
    return result


def run_all(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    edges = graph.edge_list()
    victims = edges[:: max(len(edges) // N_CHANGES, 1)][:N_CHANGES]
    non_edges = []
    vs = graph.vertex_list()
    i = 0
    while len(non_edges) < N_CHANGES:
        u, v = vs[i], vs[-1 - i]
        if u != v and not graph.has_edge(u, v):
            non_edges.append((u, v))
        i += 1

    batches = {
        "edge_additions": ChangeBatch(
            edge_additions=[EdgeAddition(u, v, 1.0) for u, v in non_edges]
        ),
        "weight_decreases": ChangeBatch(
            edge_reweights=[
                EdgeReweight(u, v, w / 2.0) for u, v, w in victims
            ]
        ),
        "weight_increases": ChangeBatch(
            edge_reweights=[
                EdgeReweight(u, v, w * 3.0) for u, v, w in victims
            ]
        ),
        "edge_deletions": ChangeBatch(
            edge_deletions=[EdgeDeletion(u, v) for u, v, _w in victims]
        ),
    }
    rows = []
    for label, batch in batches.items():
        result = _run(graph, batch, scale)
        rows.append(
            {
                "change": label,
                "modeled_minutes": result.modeled_minutes,
                "rc_steps": result.rc_steps,
            }
        )
    # baseline restart for the deletion batch (the dearest anywhere case)
    engine = AnytimeAnywhereCloseness(
        graph,
        AnytimeConfig(nprocs=scale.nprocs, seed=scale.seed,
                      collect_snapshots=False),
    )
    result = engine.run_baseline_restart(
        ChangeStream({2: batches["edge_deletions"]})
    )
    rows.append(
        {
            "change": "edge_deletions(baseline restart)",
            "modeled_minutes": result.modeled_minutes,
            "rc_steps": result.rc_steps,
        }
    )
    return rows


def test_edge_ops_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("ablation_edge_ops", rows, COLUMNS)
    by = {r["change"]: r["modeled_minutes"] for r in rows}
    # monotone relax-only changes are cheaper than invalidating ones
    assert by["edge_additions"] <= by["edge_deletions"]
    assert by["weight_decreases"] <= by["weight_increases"]