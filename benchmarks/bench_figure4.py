"""Figure 4 — anytime anywhere vs. baseline restart.

Paper: 512 vertices added at RC0 / RC4 / RC8 on a 50,000-vertex graph with
16 processors; the anytime-anywhere approach (RoundRobin-PS) reuses partial
results while the baseline restarts from scratch.

Expected shape: the anytime-anywhere series is flat across injection steps;
the baseline grows with the injection step (later restarts waste more
partial work) and loses from mid-analysis injections onward.
"""

from repro.bench import figure4

COLUMNS = [
    "inject_step",
    "strategy",
    "modeled_minutes",
    "rc_steps",
    "new_cut_edges",
    "wall_seconds",
]


def test_figure4(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: figure4(scale), rounds=1, iterations=1
    )
    emit("figure4", rows, COLUMNS)

    anytime = {
        r["inject_step"]: r["modeled_minutes"]
        for r in rows
        if r["strategy"] == "anytime_roundrobin"
    }
    baseline = {
        r["inject_step"]: r["modeled_minutes"]
        for r in rows
        if r["strategy"] == "baseline_restart"
    }
    # shape check: baseline degrades with later injection, anytime does not
    steps = sorted(anytime)
    assert baseline[steps[-1]] >= baseline[steps[0]]
    assert anytime[steps[-1]] <= 1.5 * anytime[steps[0]]
    # from mid-analysis injections on, anytime wins (paper's headline)
    assert anytime[steps[-1]] < baseline[steps[-1]]
