"""Dense vs delta boundary exchange: payload words, modeled and wall time.

Runs the same scenarios under both wire formats and verifies that

* closeness values are **bitwise identical** (the delta format is an
  encoding, not an approximation),
* the delta format ships strictly fewer boundary-exchange payload words,
* on the dynamic vertex-addition scenario the reduction is at least 40%,
* delta adds no wall-time regression beyond noise tolerance.

Writes ``benchmarks/results/BENCH_delta_exchange.json`` and exits
non-zero if any criterion fails, so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_delta_exchange.py --smoke
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

import repro
from repro import AnytimeConfig
from repro.bench.workloads import incremental_stream
from repro.graph import barabasi_albert

RESULTS = Path(__file__).parent / "results" / "BENCH_delta_exchange.json"

#: hard floor on the dynamic-scenario boundary-word reduction
REQUIRED_DYNAMIC_REDUCTION = 0.40

#: wall-time noise tolerance: delta must not be slower than dense by more
#: than this factor on any scenario
WALL_SLACK = 1.5


def closeness_bits(closeness: Dict[int, float]) -> List[Tuple[int, bytes]]:
    return [(v, struct.pack("<d", closeness[v])) for v in sorted(closeness)]


def run_scenario(
    name: str, smoke: bool
) -> Dict[str, Any]:
    """Run one scenario under both wire formats; return the comparison."""
    if name == "static":
        n = 150 if smoke else 600
        nprocs = 4 if smoke else 8
        graph = barabasi_albert(n, 2, seed=11)
        changes = None
        strategy = None
    elif name == "dynamic":
        # continuous vertex additions (the paper's Fig. 8 regime): one
        # community-structured batch per RC step — the workload the delta
        # format targets, since each batch refines existing rows in only
        # the freshly added columns
        n = 150 if smoke else 500
        per_step = 8 if smoke else 20
        steps = 6 if smoke else 10
        nprocs = 4 if smoke else 8
        workload = incremental_stream(n, per_step, steps, seed=11)
        graph = workload.base
        changes = workload.stream
        strategy = "cutedge"
    else:
        raise ValueError(f"unknown scenario {name!r}")

    runs: Dict[str, Dict[str, Any]] = {}
    bits: Dict[str, List[Tuple[int, bytes]]] = {}
    for fmt in ("dense", "delta"):
        config = AnytimeConfig(
            nprocs=nprocs,
            seed=11,
            collect_snapshots=False,
            wire_format=fmt,
        )
        t0 = time.perf_counter()
        result = repro.closeness(
            graph.copy(),
            config=config,
            changes=changes,
            strategy=strategy or "roundrobin",
        )
        wall = time.perf_counter() - t0
        summary = result.summary()
        summary["harness_wall_seconds"] = wall
        runs[fmt] = summary
        bits[fmt] = closeness_bits(result.closeness)

    dense_words = int(runs["dense"]["boundary_words"])
    delta_words = int(runs["delta"]["boundary_words"])
    reduction = (
        1.0 - delta_words / dense_words if dense_words else 0.0
    )
    return {
        "name": name,
        "dense": runs["dense"],
        "delta": runs["delta"],
        "bitwise_identical": bits["dense"] == bits["delta"],
        "boundary_words_dense": dense_words,
        "boundary_words_delta": delta_words,
        "boundary_words_reduction": reduction,
        "wall_ratio_delta_vs_dense": (
            runs["delta"]["harness_wall_seconds"]
            / max(runs["dense"]["harness_wall_seconds"], 1e-9)
        ),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-friendly scale"
    )
    parser.add_argument(
        "--out", type=str, default=str(RESULTS), help="output JSON path"
    )
    args = parser.parse_args(argv)

    scenarios = [run_scenario(s, args.smoke) for s in ("static", "dynamic")]
    dynamic = next(s for s in scenarios if s["name"] == "dynamic")

    failures: List[str] = []
    for sc in scenarios:
        if not sc["bitwise_identical"]:
            failures.append(
                f"{sc['name']}: closeness differs between dense and delta"
            )
        if sc["boundary_words_delta"] >= sc["boundary_words_dense"]:
            failures.append(
                f"{sc['name']}: delta payload words"
                f" ({sc['boundary_words_delta']}) not strictly below dense"
                f" ({sc['boundary_words_dense']})"
            )
        if sc["wall_ratio_delta_vs_dense"] > WALL_SLACK:
            failures.append(
                f"{sc['name']}: delta wall time regressed"
                f" ({sc['wall_ratio_delta_vs_dense']:.2f}x dense)"
            )
    if dynamic["boundary_words_reduction"] < REQUIRED_DYNAMIC_REDUCTION:
        failures.append(
            "dynamic: boundary-word reduction"
            f" {dynamic['boundary_words_reduction']:.1%} below the"
            f" {REQUIRED_DYNAMIC_REDUCTION:.0%} floor"
        )

    report = {
        "bench": "delta_exchange",
        "smoke": args.smoke,
        "required_dynamic_reduction": REQUIRED_DYNAMIC_REDUCTION,
        "wall_slack": WALL_SLACK,
        "scenarios": scenarios,
        "failures": failures,
        "pass": not failures,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for sc in scenarios:
        print(
            f"{sc['name']:>8}: dense {sc['boundary_words_dense']:,} words,"
            f" delta {sc['boundary_words_delta']:,} words"
            f" ({sc['boundary_words_reduction']:.1%} saved),"
            f" bitwise_identical={sc['bitwise_identical']},"
            f" wall x{sc['wall_ratio_delta_vs_dense']:.2f}"
        )
    print(f"report written to {out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("all criteria met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
