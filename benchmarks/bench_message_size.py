"""Ablation — maximum message size S (paper §IV.C).

"The maximum size of a single message exchanged between the processors is
represented by S ... chosen such that the network remains lightly loaded."
Small S chunks every boundary-DV payload into many header-paying wire
messages; large S approaches one-shot transfers.  This sweep quantifies
the header-amortization curve.
"""


from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.graph import barabasi_albert
from repro.model import LogPParams

COLUMNS = ["max_message_kib", "modeled_comm_s", "modeled_total_s"]

SIZES_KIB = (1, 4, 16, 64, 1024)


def run_all(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    rows = []
    for kib in SIZES_KIB:
        logp = LogPParams(max_message_bytes=kib * 1024)
        engine = AnytimeAnywhereCloseness(
            graph,
            AnytimeConfig(
                nprocs=scale.nprocs, logp=logp,
                collect_snapshots=False, seed=scale.seed,
            ),
        )
        engine.setup()
        engine.run()
        tracer = engine.cluster.tracer
        rows.append(
            {
                "max_message_kib": kib,
                "modeled_comm_s": sum(r.modeled_comm for r in tracer.records),
                "modeled_total_s": tracer.modeled_seconds,
            }
        )
    return rows


def test_message_size_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("ablation_message_size", rows, COLUMNS)
    comm = [r["modeled_comm_s"] for r in rows]
    # larger S amortizes headers: comm time is non-increasing in S
    assert all(b <= a + 1e-12 for a, b in zip(comm, comm[1:]))
    # and the effect is material between the extremes
    assert comm[0] > comm[-1]
