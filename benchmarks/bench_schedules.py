"""Ablation — communication schedule for the boundary-DV exchange.

The paper's schedule serializes messages ("only one message traverses the
network at any given time") to avoid flooding, paying O(P^2) message slots.
This ablation compares it with disjoint pairwise-exchange rounds and with
an uncoordinated flood (whose payload bytes suffer modeled contention).
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.graph import barabasi_albert
from repro.model.schedules import SCHEDULES

COLUMNS = ["schedule", "modeled_comm_s", "modeled_total_s", "messages"]


def run_all(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    rows = []
    for name, sched in SCHEDULES.items():
        engine = AnytimeAnywhereCloseness(
            graph,
            AnytimeConfig(
                nprocs=scale.nprocs, schedule=sched,
                collect_snapshots=False, seed=scale.seed,
            ),
        )
        engine.setup()
        engine.run()
        tracer = engine.cluster.tracer
        comm = sum(r.modeled_comm for r in tracer.records)
        rows.append(
            {
                "schedule": name,
                "modeled_comm_s": comm,
                "modeled_total_s": tracer.modeled_seconds,
                "messages": tracer.total_messages,
            }
        )
    return rows


def test_schedule_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("ablation_schedules", rows, COLUMNS)
    by_name = {r["schedule"]: r for r in rows}
    # pairwise rounds overlap messages: strictly less modeled comm time
    assert (
        by_name["pairwise"]["modeled_comm_s"]
        < by_name["sequential"]["modeled_comm_s"]
    )
    # all schedules exchange the same number of messages (same algorithm)
    msgs = {r["messages"] for r in rows}
    assert len(msgs) == 1
