"""Kernel tiers: IA wall-clock by tier, bitwise-pinned to the oracle.

Runs the same scenarios under the ``numpy`` oracle tier and the
source-chunked ``scipy`` tier (plus the ``numba`` tier when its
compiled kernels are importable) and records, per point,

* the initial-approximation (IA) wall time for the serial oracle, the
  process backend under the oracle tier (one task per rank), and the
  process backend under the scipy tier (one task per source chunk, so a
  single large rank fans out across every pool slot),
* the recompute (RC) wall time on a dynamic vertex-addition stream,
* the IA speedup of ``scipy``/process over the serial oracle and over
  ``numpy``/process (the latter isolates what chunking itself buys),

and verifies the acceptance criteria: the scipy tier's closeness must
be **bitwise identical** to the numpy oracle, and the numba tier must
be exact when it falls back to scipy or within
``NUMBA_CLOSENESS_RTOL`` when compiled.

The ``>= 5x`` IA speedup floor at 20k vertices only makes sense with
the cores to back it: the gate is enforced only when ``cpu_count >=
GATED_NPROCS`` at full scale; otherwise the speedups are informational
— on a single-core container the pool measures orchestration overhead,
not parallelism.

Writes ``benchmarks/results/BENCH_kernel_tiers.json`` and exits
non-zero if any enforced criterion fails, so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_kernel_tiers.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import struct
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench.workloads import incremental_stream
from repro.graph import barabasi_albert
from repro.runtime.kernels import HAS_NUMBA, NUMBA_CLOSENESS_RTOL

RESULTS = Path(__file__).parent / "results" / "BENCH_kernel_tiers.json"

#: hard floor on IA speedup (scipy tier on the process backend over the
#: serial numpy oracle) at the gated nprocs
REQUIRED_IA_SPEEDUP = 5.0

#: the nprocs value the speedup gate applies to
GATED_NPROCS = 8

#: full-scale static graph (the acceptance scale); smoke shrinks this
FULL_STATIC_N = 20_000
SMOKE_STATIC_N = 400

#: dynamic (RC) scenario scale — kept moderate: RC folds the whole
#: local APSP per superstep
FULL_DYNAMIC_N = 600
SMOKE_DYNAMIC_N = 200


def closeness_bits(closeness: Dict[int, float]) -> List[Tuple[int, bytes]]:
    return [(v, struct.pack("<d", closeness[v])) for v in sorted(closeness)]


def max_rel_err(
    a: List[Tuple[int, bytes]], b: List[Tuple[int, bytes]]
) -> float:
    err = 0.0
    for (va, ba), (vb, bb) in zip(a, b):
        assert va == vb
        x = struct.unpack("<d", ba)[0]
        y = struct.unpack("<d", bb)[0]
        denom = max(abs(x), abs(y), 1e-300)
        err = max(err, abs(x - y) / denom)
    return err


def phase_walls(engine: AnytimeAnywhereCloseness) -> Dict[str, float]:
    walls = {"ia": 0.0, "rc": 0.0, "other": 0.0}
    for rec in engine.cluster.tracer.to_json()["records"]:
        if rec["name"] == "initial_approximation":
            walls["ia"] += rec["wall_seconds"]
        elif rec["name"] == "rc_step":
            walls["rc"] += rec["wall_seconds"]
        else:
            walls["other"] += rec["wall_seconds"]
    return walls


def run_case(
    backend: str,
    tier: str,
    nprocs: int,
    graph: Any,
    changes: Any,
    strategy: Optional[str],
    ia_only: bool,
) -> Dict[str, Any]:
    config = AnytimeConfig(
        nprocs=nprocs,
        seed=11,
        collect_snapshots=False,
        backend=backend,
        kernel_tier=tier,
    )
    engine = AnytimeAnywhereCloseness(graph.copy(), config)
    t0 = time.perf_counter()
    engine.setup()
    if ia_only:
        closeness = engine.current_closeness()
        modeled: Optional[float] = None
    else:
        kwargs: Dict[str, Any] = {}
        if changes is not None:
            kwargs["changes"] = changes
            kwargs["strategy"] = strategy
        result = engine.run(**kwargs)
        closeness = result.closeness
        modeled = result.modeled_seconds
    wall = time.perf_counter() - t0
    walls = phase_walls(engine)
    engine.cluster.close()
    return {
        "backend": backend,
        "tier": tier,
        "nprocs": nprocs,
        "ia_wall_seconds": walls["ia"],
        "rc_wall_seconds": walls["rc"],
        "total_wall_seconds": wall,
        "modeled_seconds": modeled,
        "bits": closeness_bits(closeness),
    }


def run_point(
    nprocs: int,
    graph: Any,
    changes: Any,
    strategy: Optional[str],
    ia_only: bool,
) -> Dict[str, Any]:
    cases = {
        "numpy_serial": run_case(
            "serial", "numpy", nprocs, graph, changes, strategy, ia_only
        ),
        "numpy_process": run_case(
            "process", "numpy", nprocs, graph, changes, strategy, ia_only
        ),
        "scipy_process": run_case(
            "process", "scipy", nprocs, graph, changes, strategy, ia_only
        ),
        "numba_serial": run_case(
            "serial", "numba", nprocs, graph, changes, strategy, ia_only
        ),
    }
    oracle_bits = cases["numpy_serial"]["bits"]
    numba_bits = cases["numba_serial"]["bits"]
    numba_exact = numba_bits == oracle_bits
    point = {
        "nprocs": nprocs,
        "scipy_bitwise_identical": (
            cases["scipy_process"]["bits"] == oracle_bits
        ),
        "numpy_process_bitwise_identical": (
            cases["numpy_process"]["bits"] == oracle_bits
        ),
        "numba_exact": numba_exact,
        "numba_max_rel_err": (
            0.0 if numba_exact else max_rel_err(numba_bits, oracle_bits)
        ),
        "ia_speedup_scipy_vs_serial": (
            cases["numpy_serial"]["ia_wall_seconds"]
            / max(cases["scipy_process"]["ia_wall_seconds"], 1e-9)
        ),
        "ia_speedup_scipy_vs_numpy_process": (
            cases["numpy_process"]["ia_wall_seconds"]
            / max(cases["scipy_process"]["ia_wall_seconds"], 1e-9)
        ),
    }
    for key, case in cases.items():
        case.pop("bits")
        point[key] = case
    return point


def run_scenario(
    name: str, nprocs_list: List[int], smoke: bool
) -> Dict[str, Any]:
    ia_only = False
    if name == "static":
        n = SMOKE_STATIC_N if smoke else FULL_STATIC_N
        graph = barabasi_albert(n, 3, seed=11)
        changes = None
        strategy = None
        ia_only = not smoke
    elif name == "dynamic":
        n = SMOKE_DYNAMIC_N if smoke else FULL_DYNAMIC_N
        per_step = 8 if smoke else 20
        steps = 4 if smoke else 6
        workload = incremental_stream(n, per_step, steps, seed=11)
        graph = workload.base
        changes = workload.stream
        strategy = "cutedge"
    else:
        raise ValueError(f"unknown scenario {name!r}")

    points = [
        run_point(nprocs, graph, changes, strategy, ia_only)
        for nprocs in nprocs_list
    ]
    return {
        "name": name,
        "n_vertices": n,
        "ia_only": ia_only,
        "points": points,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-friendly scale"
    )
    parser.add_argument(
        "--out", type=str, default=str(RESULTS), help="output JSON path"
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    nprocs_list = [2] if args.smoke else [4, 8]
    scenarios = [
        run_scenario(s, nprocs_list, args.smoke)
        for s in ("static", "dynamic")
    ]

    gate_active = cpu_count >= GATED_NPROCS and not args.smoke

    failures: List[str] = []
    for sc in scenarios:
        for pt in sc["points"]:
            where = f"{sc['name']} nprocs={pt['nprocs']}"
            if not pt["scipy_bitwise_identical"]:
                failures.append(
                    f"{where}: scipy tier closeness differs from the"
                    " numpy oracle"
                )
            if not pt["numpy_process_bitwise_identical"]:
                failures.append(
                    f"{where}: process backend differs from serial under"
                    " the numpy tier"
                )
            if HAS_NUMBA:
                if pt["numba_max_rel_err"] > NUMBA_CLOSENESS_RTOL:
                    failures.append(
                        f"{where}: numba closeness off by"
                        f" {pt['numba_max_rel_err']:.2e}, beyond the"
                        f" {NUMBA_CLOSENESS_RTOL:.0e} bound"
                    )
            elif not pt["numba_exact"]:
                failures.append(
                    f"{where}: numba fallback (scipy) is not bitwise"
                    " identical to the oracle"
                )
    if gate_active:
        static = next(s for s in scenarios if s["name"] == "static")
        gated = next(
            (p for p in static["points"] if p["nprocs"] == GATED_NPROCS),
            None,
        )
        if (
            gated is None
            or gated["ia_speedup_scipy_vs_serial"] < REQUIRED_IA_SPEEDUP
        ):
            got = (
                "n/a"
                if gated is None
                else f"{gated['ia_speedup_scipy_vs_serial']:.2f}x"
            )
            failures.append(
                f"static: scipy-tier IA speedup at nprocs={GATED_NPROCS}"
                f" is {got}, below the {REQUIRED_IA_SPEEDUP:.0f}x floor"
            )

    report = {
        "bench": "kernel_tiers",
        "smoke": args.smoke,
        "cpu_count": cpu_count,
        "numba_compiled": HAS_NUMBA,
        "numba_closeness_rtol": NUMBA_CLOSENESS_RTOL,
        "gate_active": gate_active,
        "required_ia_speedup": REQUIRED_IA_SPEEDUP,
        "gated_nprocs": GATED_NPROCS,
        "scenarios": scenarios,
        "failures": failures,
        "pass": not failures,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for sc in scenarios:
        for pt in sc["points"]:
            print(
                f"{sc['name']:>8} nprocs={pt['nprocs']}:"
                f" IA oracle {pt['numpy_serial']['ia_wall_seconds']:.3f}s,"
                f" numpy/proc {pt['numpy_process']['ia_wall_seconds']:.3f}s,"
                f" scipy/proc {pt['scipy_process']['ia_wall_seconds']:.3f}s"
                f" (x{pt['ia_speedup_scipy_vs_serial']:.2f} vs serial,"
                f" x{pt['ia_speedup_scipy_vs_numpy_process']:.2f} vs"
                " numpy/proc),"
                f" scipy_bitwise={pt['scipy_bitwise_identical']},"
                f" numba_exact={pt['numba_exact']}"
            )
    print(
        f"cpu_count={cpu_count}, numba_compiled={HAS_NUMBA},"
        f" gate_active={gate_active}; report written to {out}"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("all enforced criteria met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
