"""Robustness — do the paper's shapes survive on LFR workloads?

The default figure benches use controlled planted-partition batches; this
bench re-runs the Fig. 5 comparison on LFR benchmark graphs (power-law
degrees *and* community sizes, realistic mixing) and asserts the same
qualitative claims: the cut-edge ordering and Repartition-S's win for
large batches.
"""

from repro.bench import lfr_workload, run_workload

COLUMNS = [
    "batch",
    "strategy",
    "modeled_minutes",
    "new_cut_edges",
    "rc_steps",
]


def run_all(scale):
    rows = []
    fractions = (0.1, 0.4)
    for frac in fractions:
        n_new = max(int(scale.n_base * frac), 8)
        wl = lfr_workload(
            scale.n_base, n_new, mu=0.15, seed=scale.seed, inject_step=0
        )
        for strat in ("repartition", "cutedge", "roundrobin"):
            out = run_workload(wl, strat, scale)
            row = out.as_row()
            row["batch"] = wl.total_added
            rows.append(row)
    return rows


def test_lfr_realism(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("robustness_lfr", rows, COLUMNS)
    largest = max(r["batch"] for r in rows)
    big = {r["strategy"]: r for r in rows if r["batch"] == largest}
    # Fig. 7 ordering on realistic structure
    assert big["repartition"]["new_cut_edges"] <= big["cutedge"]["new_cut_edges"]
    assert big["cutedge"]["new_cut_edges"] <= big["roundrobin"]["new_cut_edges"]
    # Fig. 5 large-batch crossover on realistic structure
    assert (
        big["repartition"]["modeled_minutes"]
        < big["roundrobin"]["modeled_minutes"]
    )
