"""Ablation — DD-phase partitioner choice.

DESIGN.md: "multilevel vs spectral vs BFS-growing vs hashing: cut size,
balance, and downstream RC cost."  The paper delegates this choice to
ParMETIS; this ablation quantifies why a cut-minimizing partitioner is the
right default (boundary-DV traffic scales with the cut).
"""


from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.graph import holme_kim
from repro.partition import (
    BFSGrowingPartitioner,
    HashPartitioner,
    MultilevelPartitioner,
    RoundRobinPartitioner,
    SpectralPartitioner,
    partition_report,
)

COLUMNS = ["partitioner", "edge_cut", "balance", "pipeline_modeled_s"]


def run_all(scale):
    graph = holme_kim(scale.n_base, scale.m, p_triad=0.7, seed=scale.seed)
    rows = []
    for part in (
        MultilevelPartitioner(seed=scale.seed),
        SpectralPartitioner(seed=scale.seed),
        BFSGrowingPartitioner(seed=scale.seed),
        HashPartitioner(),
        RoundRobinPartitioner(),
    ):
        rep = partition_report(graph, part.partition(graph, scale.nprocs))
        engine = AnytimeAnywhereCloseness(
            graph,
            AnytimeConfig(
                nprocs=scale.nprocs, partitioner=part,
                collect_snapshots=False, seed=scale.seed,
            ),
        )
        engine.setup()
        result = engine.run()
        rows.append(
            {
                "partitioner": part.name,
                "edge_cut": rep["edge_cut"],
                "balance": rep["balance"],
                "pipeline_modeled_s": result.modeled_seconds,
            }
        )
    return rows


def test_partitioner_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("ablation_partitioners", rows, COLUMNS)
    by_name = {r["partitioner"]: r for r in rows}
    ml = by_name["MultilevelPartitioner"]
    # the METIS-style partitioner must beat the structure-oblivious ones on
    # cut, and that must translate into a faster pipeline
    for oblivious in ("HashPartitioner", "RoundRobinPartitioner"):
        assert ml["edge_cut"] < by_name[oblivious]["edge_cut"]
        assert (
            ml["pipeline_modeled_s"]
            < by_name[oblivious]["pipeline_modeled_s"]
        )
