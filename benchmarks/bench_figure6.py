"""Figure 6 — strategy comparison for vertex additions at RC8 (late stage).

Paper: same sweep as Fig. 5 but injected late in the analysis; the same
ordering holds (RR/CutEdge for small batches, Repartition-S for large).
"""

from repro.bench import figure6

COLUMNS = [
    "batch_size",
    "strategy",
    "modeled_minutes",
    "rc_steps",
    "new_cut_edges",
    "wall_seconds",
]


def test_figure6(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: figure6(scale), rounds=1, iterations=1
    )
    emit("figure6", rows, COLUMNS)

    def minutes(strategy, size):
        return next(
            r["modeled_minutes"]
            for r in rows
            if r["strategy"] == strategy and r["batch_size"] == size
        )

    largest = max(scale.batch_sizes)
    assert minutes("repartition", largest) < minutes("roundrobin", largest)
    assert minutes("repartition", largest) < minutes("cutedge", largest)
