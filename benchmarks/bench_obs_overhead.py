"""Observability overhead: observer-off vs JSONL vs Perfetto exporters.

Runs the standard scale-free dynamic scenario three ways — no observers
(the zero-cost default), the JSONL event exporter, and the Perfetto
trace-event exporter — under both the ``serial`` and ``process``
backends, measuring wall-clock overhead relative to the unobserved run
and verifying closeness and the modeled clock stay **bitwise identical**
with observers attached.

Each variant runs ``--repeats`` times and the *minimum* wall time is
compared (minimum-of-N is the standard way to strip scheduler noise from
small wall-clock ratios).  The ``<5%`` overhead gate for the default
JSONL observer is enforced at full scale on the serial backend, where
kernel wall time is pure compute; at smoke scale (or when the run is too
short to measure a stable ratio) the numbers are informational.

Writes ``benchmarks/results/BENCH_obs_overhead.json`` and exits non-zero
if any enforced criterion fails, so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import struct
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench.workloads import incremental_stream
from repro.obs import canonical_line

RESULTS = Path(__file__).parent / "results" / "BENCH_obs_overhead.json"

#: hard ceiling on JSONL-observer wall overhead (fraction) at full scale
MAX_JSONL_OVERHEAD = 0.05

#: dynamic scenario scale (matches bench_backend_scaling's RC scenario)
FULL_N = 1_000
SMOKE_N = 200

#: variant name -> observer spec factory (path-parameterized)
VARIANTS = ("off", "jsonl", "perfetto")


def closeness_bits(closeness: Dict[int, float]) -> List[Tuple[int, bytes]]:
    return [(v, struct.pack("<d", closeness[v])) for v in sorted(closeness)]


def run_once(
    backend: str,
    variant: str,
    graph: Any,
    changes: Any,
    out_dir: Path,
) -> Dict[str, Any]:
    observers: Tuple[str, ...] = ()
    export_path = out_dir / f"trace_{backend}_{variant}.out"
    if variant == "jsonl":
        observers = (f"jsonl:{export_path}",)
    elif variant == "perfetto":
        observers = (f"perfetto:{export_path}",)
    config = AnytimeConfig(
        nprocs=4,
        seed=11,
        collect_snapshots=False,
        backend=backend,
        observers=observers,
    )
    t0 = time.perf_counter()
    with AnytimeAnywhereCloseness(graph.copy(), config) as engine:
        engine.setup()
        result = engine.run(changes=changes, strategy="cutedge")
    wall = time.perf_counter() - t0
    events: Optional[List[str]] = None
    if variant == "jsonl":
        events = [
            canonical_line(line)
            for line in export_path.read_text(encoding="utf-8").splitlines()
        ]
    return {
        "wall": wall,
        "bits": closeness_bits(result.closeness),
        "modeled_seconds": result.modeled_seconds,
        "wire_words": result.wire_words,
        "events": events,
    }


def run_backend(
    backend: str, graph: Any, changes: Any, repeats: int, out_dir: Path
) -> Dict[str, Any]:
    runs: Dict[str, List[Dict[str, Any]]] = {v: [] for v in VARIANTS}
    for _ in range(repeats):
        for variant in VARIANTS:
            runs[variant].append(
                run_once(backend, variant, graph, changes, out_dir)
            )
    base = runs["off"][0]
    point: Dict[str, Any] = {"backend": backend, "repeats": repeats}
    identical = True
    for variant in VARIANTS:
        walls = [r["wall"] for r in runs[variant]]
        best = min(walls)
        point[f"{variant}_wall_seconds"] = best
        for r in runs[variant]:
            if (
                r["bits"] != base["bits"]
                or r["modeled_seconds"] != base["modeled_seconds"]
                or r["wire_words"] != base["wire_words"]
            ):
                identical = False
    jsonl_events = [r["events"] for r in runs["jsonl"]]
    point["jsonl_deterministic"] = all(
        ev == jsonl_events[0] for ev in jsonl_events
    )
    point["bitwise_identical"] = identical
    off = point["off_wall_seconds"]
    for variant in ("jsonl", "perfetto"):
        point[f"{variant}_overhead"] = (
            point[f"{variant}_wall_seconds"] - off
        ) / max(off, 1e-9)
    return point


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-friendly scale"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per variant; minimum wall time is compared"
    )
    parser.add_argument(
        "--out", type=str, default=str(RESULTS), help="output JSON path"
    )
    args = parser.parse_args(argv)

    n = SMOKE_N if args.smoke else FULL_N
    per_step = 8 if args.smoke else 20
    steps = 4 if args.smoke else 8
    workload = incremental_stream(n, per_step, steps, seed=11)

    points: List[Dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="bench_obs_") as tmp:
        for backend in ("serial", "process"):
            points.append(
                run_backend(
                    backend,
                    workload.base,
                    workload.stream,
                    max(1, args.repeats),
                    Path(tmp),
                )
            )

    gate_active = not args.smoke
    failures: List[str] = []
    for pt in points:
        if not pt["bitwise_identical"]:
            failures.append(
                f"{pt['backend']}: closeness/modeled clock/wire words"
                " changed with observers attached"
            )
        if not pt["jsonl_deterministic"]:
            failures.append(
                f"{pt['backend']}: JSONL export differs between repeated"
                " identical runs (after stripping wall annotations)"
            )
    if gate_active:
        serial = next(p for p in points if p["backend"] == "serial")
        if serial["jsonl_overhead"] >= MAX_JSONL_OVERHEAD:
            failures.append(
                f"serial: JSONL observer overhead"
                f" {serial['jsonl_overhead']:.1%} is at or above the"
                f" {MAX_JSONL_OVERHEAD:.0%} ceiling"
            )

    report = {
        "bench": "obs_overhead",
        "smoke": args.smoke,
        "cpu_count": os.cpu_count() or 1,
        "gate_active": gate_active,
        "max_jsonl_overhead": MAX_JSONL_OVERHEAD,
        "n_vertices": n,
        "points": points,
        "failures": failures,
        "pass": not failures,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for pt in points:
        print(
            f"{pt['backend']:>8}: off {pt['off_wall_seconds']:.3f}s,"
            f" jsonl {pt['jsonl_wall_seconds']:.3f}s"
            f" ({pt['jsonl_overhead']:+.1%}),"
            f" perfetto {pt['perfetto_wall_seconds']:.3f}s"
            f" ({pt['perfetto_overhead']:+.1%}),"
            f" bitwise_identical={pt['bitwise_identical']},"
            f" jsonl_deterministic={pt['jsonl_deterministic']}"
        )
    print(f"gate_active={gate_active}; report written to {out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("all enforced criteria met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
