"""Ablation — restricted vs. full local propagation fold (wall clock).

DESIGN.md calls out the implementation's key optimization: the paper's RC
step performs a full Floyd–Warshall-style local DV update; because the
local APSP matrix is transitively closed, folding only the *changed* rows
over the *dirty* columns is equivalent.  This kernel benchmark measures
the real-time gap between the two on identical state (the modeled clock
charges the paper's dense cost either way — see worker.propagate_local).
"""

import numpy as np

from repro.graph import barabasi_albert, extract_local_subgraph
from repro.model import DEFAULT_COST
from repro.partition import MultilevelPartitioner
from repro.runtime import GlobalIndex, Worker

COLUMNS = ["variant", "seconds_per_fold"]


def build_worker(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    part = MultilevelPartitioner(seed=scale.seed).partition(
        graph, scale.nprocs
    )
    index = GlobalIndex(graph.vertex_list())
    w = Worker(0, scale.nprocs, index, DEFAULT_COST)
    sub = extract_local_subgraph(graph, part.block(0), part.assignment, 0)
    w.load_subgraph(sub)
    w.run_initial_approximation()
    w.propagate_local()
    return w


def perturb(w, k=4):
    """Improve a few boundary rows as an RC step's cut relaxation would."""
    rng = np.random.default_rng(0)
    for v in list(w.cut_adj)[:k]:
        r = w.row_of[v]
        cols = rng.integers(0, w.n_cols, size=8)
        w.dv[r, cols] = np.maximum(w.dv[r, cols] * 0.5, 0.0)
        w._mark_row_changed(r)
        w._dirty_cols[cols] = True


def test_restricted_fold(benchmark, scale):
    w = build_worker(scale)

    def fold():
        perturb(w)
        w.propagate_local()

    benchmark(fold)


def test_full_fold(benchmark, scale):
    w = build_worker(scale)

    def fold():
        perturb(w)
        w.request_full_repropagate()
        w.propagate_local()

    benchmark(fold)
