"""Extension — strong scaling of the static pipeline.

The paper evaluates at a fixed 16 processors; this sweep varies P.  The
LogP analysis of §IV predicts the profile: per-worker compute shrinks
roughly ~1/P (smaller sub-graphs) while the personalized all-to-all costs
grow with P, so speedup is strong early and saturates as communication's
share rises.
"""

from repro.bench.scenarios import scaling

COLUMNS = [
    "nprocs",
    "modeled_seconds",
    "comm_seconds",
    "comm_fraction",
    "speedup",
    "rc_steps",
]


def test_strong_scaling(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: scaling(scale, proc_counts=(1, 2, 4, 8, 16)),
        rounds=1,
        iterations=1,
    )
    emit("extension_scaling", rows, COLUMNS)
    by_p = {r["nprocs"]: r for r in rows}
    # parallelism pays somewhere: the best multi-processor configuration
    # beats serial (at small problem sizes that optimum sits at low P —
    # exactly the saturation the LogP analysis predicts)
    best_parallel = min(
        r["modeled_seconds"] for r in rows if r["nprocs"] > 1
    )
    assert best_parallel < by_p[1]["modeled_seconds"]
    # and communication's share of the runtime grows with P
    assert by_p[16]["comm_fraction"] > by_p[2]["comm_fraction"]