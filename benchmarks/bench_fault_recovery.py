"""Ablation — fault recovery cost vs. full restart (paper §VI).

The anytime warm recovery (crash a worker, re-ship its sub-graph, rerun
its local IA, let RC re-converge) is compared with the only alternative a
static system has: restarting the whole computation.  Recovery should cost
a small fraction of the restart.

The second sweep compares the supervised recovery *policies* (warm /
checkpoint / redistribute) across checkpoint intervals and fault steps,
reporting the modeled time spent inside the ``fault_recovery`` phase — the
simulation's MTTR analogue — plus the steady-state checkpoint overhead the
policy pays even when nothing fails.  Single-threaded IA cost is used so
the recompute-vs-restore trade-off is visible: with many cost-model
threads the warm Dijkstra rerun is nearly free and checkpointing can only
lose.
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig, FaultPlan, HealthPolicy
from repro.graph import barabasi_albert
from repro.model.cost import DEFAULT_COST
from repro.runtime.chaos import RECOVERY_POLICIES
from repro.runtime.faults import crash_and_recover

COLUMNS = ["variant", "modeled_minutes", "rc_steps"]

SWEEP_COLUMNS = [
    "policy",
    "ckpt_interval",
    "fault_step",
    "mttr_modeled_ms",
    "ckpt_overhead_ms",
    "total_modeled_minutes",
    "converged",
]

STRAGGLER_COLUMNS = [
    "variant",
    "modeled_seconds",
    "speculations",
    "missed_deadlines",
    "closeness_identical",
]

LADDER_COLUMNS = [
    "scenario",
    "rung",
    "recoveries",
    "mttr_modeled_ms",
    "degraded",
    "degraded_reason",
    "finite_fraction",
    "alive_fraction",
]


def run_all(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)

    # cost of the initial full analysis (the restart price)
    engine = AnytimeAnywhereCloseness(
        graph,
        AnytimeConfig(nprocs=scale.nprocs, seed=scale.seed,
                      collect_snapshots=False),
    )
    engine.setup()
    full = engine.run()
    full_cost = engine.modeled_seconds

    # crash one worker and recover in place
    before = engine.modeled_seconds
    crash_and_recover(engine.cluster, scale.nprocs // 2)
    recovery = engine.run()
    recovery_cost = engine.modeled_seconds - before

    return [
        {
            "variant": "full_restart",
            "modeled_minutes": full_cost / 60.0,
            "rc_steps": full.rc_steps,
        },
        {
            "variant": "anytime_recovery",
            "modeled_minutes": recovery_cost / 60.0,
            "rc_steps": recovery.rc_steps,
        },
    ]


def test_fault_recovery_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("ablation_fault_recovery", rows, COLUMNS)
    restart, recovery = rows
    # recovering one of P workers costs well under a full restart
    assert recovery["modeled_minutes"] < 0.8 * restart["modeled_minutes"]


def run_policy_sweep(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    victim = scale.nprocs // 2
    cost = DEFAULT_COST.with_threads(1)
    rows = []
    for policy in RECOVERY_POLICIES:
        intervals = (1, 4, 8) if policy == "checkpoint" else (8,)
        for interval in intervals:
            for fault_step in (0, 2, 4):
                engine = AnytimeAnywhereCloseness(
                    graph.copy(),
                    AnytimeConfig(
                        nprocs=scale.nprocs, seed=scale.seed,
                        collect_snapshots=False, cost=cost,
                    ),
                )
                engine.setup()
                res = engine.run(
                    fault_plan=FaultPlan.single_crash(fault_step, victim),
                    recovery=policy,
                    checkpoint_interval=interval,
                )
                ckpt = sum(
                    p.modeled_total
                    for p in engine.cluster.tracer.phases("checkpoint")
                )
                rows.append(
                    {
                        "policy": policy,
                        "ckpt_interval": (
                            interval if policy == "checkpoint" else "-"
                        ),
                        "fault_step": fault_step,
                        "mttr_modeled_ms": res.recovery_modeled_seconds * 1e3,
                        "ckpt_overhead_ms": ckpt * 1e3,
                        "total_modeled_minutes": engine.modeled_seconds / 60.0,
                        "converged": res.converged,
                    }
                )
    return rows


def test_recovery_policy_sweep(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: run_policy_sweep(scale), rounds=1, iterations=1
    )
    emit("ablation_fault_recovery_policies", rows, SWEEP_COLUMNS)
    assert all(r["converged"] for r in rows)

    def mean_mttr(policy, interval=None):
        sel = [
            r["mttr_modeled_ms"]
            for r in rows
            if r["policy"] == policy
            and (interval is None or r["ckpt_interval"] == interval)
        ]
        return sum(sel) / len(sel)

    # a fresh checkpoint (interval 1) makes restore cheaper than the warm
    # Dijkstra rerun in the single-threaded IA cost regime
    assert mean_mttr("checkpoint", 1) < mean_mttr("warm")
    # checkpointing every step costs more steady-state overhead than every
    # 8 steps (the MTTR-vs-overhead dial the interval controls)
    over = {
        i: sum(
            r["ckpt_overhead_ms"]
            for r in rows
            if r["policy"] == "checkpoint" and r["ckpt_interval"] == i
        )
        for i in (1, 8)
    }
    assert over[1] > over[8]


def _run_once(graph, scale, *, fault_plan=None, health=None, **cfg_kwargs):
    engine = AnytimeAnywhereCloseness(
        graph.copy(),
        AnytimeConfig(
            nprocs=scale.nprocs, seed=scale.seed, collect_snapshots=False,
            health=health, **cfg_kwargs,
        ),
    )
    engine.setup()
    return engine.run(fault_plan=fault_plan)


def run_straggler_mitigation(scale):
    """Fault-free vs an 8x straggler, with and without speculation.

    The acceptance bar for the health layer: speculation must recover
    most of the straggler's modeled-time damage while leaving the
    closeness values bitwise untouched.
    """
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    plan = FaultPlan(stragglers=((scale.nprocs // 2, 8.0),))

    free = _run_once(graph, scale)
    unmit = _run_once(graph, scale, fault_plan=plan)
    mit = _run_once(graph, scale, fault_plan=plan, health=HealthPolicy())

    def row(variant, res):
        return {
            "variant": variant,
            "modeled_seconds": res.modeled_seconds,
            "speculations": res.speculations,
            "missed_deadlines": res.missed_deadlines,
            "closeness_identical": res.closeness == free.closeness,
        }

    return [
        row("fault_free", free),
        row("straggler_unmitigated", unmit),
        row("straggler_mitigated", mit),
    ]


def test_straggler_mitigation(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: run_straggler_mitigation(scale), rounds=1, iterations=1
    )
    emit("ablation_straggler_mitigation", rows, STRAGGLER_COLUMNS)
    free, unmit, mit = rows
    # speculation never changes the answer, only the modeled clock
    assert all(r["closeness_identical"] for r in rows)
    assert mit["speculations"] > 0
    # mitigation claws back modeled time the straggler cost, and the
    # fault-free run stays the floor (speculation is not free)
    assert free["modeled_seconds"] <= mit["modeled_seconds"]
    assert mit["modeled_seconds"] < unmit["modeled_seconds"]


def run_escalation_ladder(scale):
    """MTTR by escalation rung, plus degraded-quality accounting.

    One scenario climbs the full warm -> checkpoint -> redistribute
    ladder and converges; the other exhausts a crash budget of 2 and
    returns a degraded partial result with its quality statement.
    """
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    victim = scale.nprocs // 2
    crashes = tuple((1 + 2 * i, victim) for i in range(3))

    def rows_for(scenario, res):
        out = []
        for rung, n in sorted(res.recoveries_by_rung.items()):
            out.append(
                {
                    "scenario": scenario,
                    "rung": rung,
                    "recoveries": n,
                    "mttr_modeled_ms": res.mttr_by_rung[rung] * 1e3,
                    "degraded": res.degraded,
                    "degraded_reason": res.degraded_reason or "-",
                    "finite_fraction": res.quality.get("finite_fraction", 1.0),
                    "alive_fraction": res.quality.get("alive_fraction", 1.0),
                }
            )
        return out

    ladder = _run_once(
        graph, scale, fault_plan=FaultPlan(crashes=crashes),
        recovery="escalate", checkpoint_interval=2,
    )
    degraded = _run_once(
        graph, scale, fault_plan=FaultPlan(crashes=crashes),
        recovery="escalate", checkpoint_interval=2,
        health=HealthPolicy(crash_budget=2),
    )
    return rows_for("full_ladder", ladder) + rows_for(
        "crash_budget_2", degraded
    )


def test_escalation_ladder(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: run_escalation_ladder(scale), rounds=1, iterations=1
    )
    emit("ablation_escalation_ladder", rows, LADDER_COLUMNS)
    ladder = [r for r in rows if r["scenario"] == "full_ladder"]
    assert {r["rung"] for r in ladder} == {
        "warm", "checkpoint", "redistribute"
    }
    assert all(not r["degraded"] for r in ladder)
    assert all(r["mttr_modeled_ms"] > 0 for r in ladder)
    budget = [r for r in rows if r["scenario"] == "crash_budget_2"]
    assert budget and all(r["degraded"] for r in budget)
    assert all(r["degraded_reason"] == "crash-budget" for r in budget)
    # the partial result still resolved a usable fraction of the DV
    assert all(0.0 < r["finite_fraction"] < 1.0 for r in budget)
    assert all(r["alive_fraction"] < 1.0 for r in budget)
