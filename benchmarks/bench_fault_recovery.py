"""Ablation — fault recovery cost vs. full restart (paper §VI).

The anytime warm recovery (crash a worker, re-ship its sub-graph, rerun
its local IA, let RC re-converge) is compared with the only alternative a
static system has: restarting the whole computation.  Recovery should cost
a small fraction of the restart.

The second sweep compares the supervised recovery *policies* (warm /
checkpoint / redistribute) across checkpoint intervals and fault steps,
reporting the modeled time spent inside the ``fault_recovery`` phase — the
simulation's MTTR analogue — plus the steady-state checkpoint overhead the
policy pays even when nothing fails.  Single-threaded IA cost is used so
the recompute-vs-restore trade-off is visible: with many cost-model
threads the warm Dijkstra rerun is nearly free and checkpointing can only
lose.
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig, FaultPlan
from repro.graph import barabasi_albert
from repro.model.cost import DEFAULT_COST
from repro.runtime.chaos import RECOVERY_POLICIES
from repro.runtime.faults import crash_and_recover

COLUMNS = ["variant", "modeled_minutes", "rc_steps"]

SWEEP_COLUMNS = [
    "policy",
    "ckpt_interval",
    "fault_step",
    "mttr_modeled_ms",
    "ckpt_overhead_ms",
    "total_modeled_minutes",
    "converged",
]


def run_all(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)

    # cost of the initial full analysis (the restart price)
    engine = AnytimeAnywhereCloseness(
        graph,
        AnytimeConfig(nprocs=scale.nprocs, seed=scale.seed,
                      collect_snapshots=False),
    )
    engine.setup()
    full = engine.run()
    full_cost = engine.modeled_seconds

    # crash one worker and recover in place
    before = engine.modeled_seconds
    crash_and_recover(engine.cluster, scale.nprocs // 2)
    recovery = engine.run()
    recovery_cost = engine.modeled_seconds - before

    return [
        {
            "variant": "full_restart",
            "modeled_minutes": full_cost / 60.0,
            "rc_steps": full.rc_steps,
        },
        {
            "variant": "anytime_recovery",
            "modeled_minutes": recovery_cost / 60.0,
            "rc_steps": recovery.rc_steps,
        },
    ]


def test_fault_recovery_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("ablation_fault_recovery", rows, COLUMNS)
    restart, recovery = rows
    # recovering one of P workers costs well under a full restart
    assert recovery["modeled_minutes"] < 0.8 * restart["modeled_minutes"]


def run_policy_sweep(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    victim = scale.nprocs // 2
    cost = DEFAULT_COST.with_threads(1)
    rows = []
    for policy in RECOVERY_POLICIES:
        intervals = (1, 4, 8) if policy == "checkpoint" else (8,)
        for interval in intervals:
            for fault_step in (0, 2, 4):
                engine = AnytimeAnywhereCloseness(
                    graph.copy(),
                    AnytimeConfig(
                        nprocs=scale.nprocs, seed=scale.seed,
                        collect_snapshots=False, cost=cost,
                    ),
                )
                engine.setup()
                res = engine.run(
                    fault_plan=FaultPlan.single_crash(fault_step, victim),
                    recovery=policy,
                    checkpoint_interval=interval,
                )
                ckpt = sum(
                    p.modeled_total
                    for p in engine.cluster.tracer.phases("checkpoint")
                )
                rows.append(
                    {
                        "policy": policy,
                        "ckpt_interval": (
                            interval if policy == "checkpoint" else "-"
                        ),
                        "fault_step": fault_step,
                        "mttr_modeled_ms": res.recovery_modeled_seconds * 1e3,
                        "ckpt_overhead_ms": ckpt * 1e3,
                        "total_modeled_minutes": engine.modeled_seconds / 60.0,
                        "converged": res.converged,
                    }
                )
    return rows


def test_recovery_policy_sweep(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: run_policy_sweep(scale), rounds=1, iterations=1
    )
    emit("ablation_fault_recovery_policies", rows, SWEEP_COLUMNS)
    assert all(r["converged"] for r in rows)

    def mean_mttr(policy, interval=None):
        sel = [
            r["mttr_modeled_ms"]
            for r in rows
            if r["policy"] == policy
            and (interval is None or r["ckpt_interval"] == interval)
        ]
        return sum(sel) / len(sel)

    # a fresh checkpoint (interval 1) makes restore cheaper than the warm
    # Dijkstra rerun in the single-threaded IA cost regime
    assert mean_mttr("checkpoint", 1) < mean_mttr("warm")
    # checkpointing every step costs more steady-state overhead than every
    # 8 steps (the MTTR-vs-overhead dial the interval controls)
    over = {
        i: sum(
            r["ckpt_overhead_ms"]
            for r in rows
            if r["policy"] == "checkpoint" and r["ckpt_interval"] == i
        )
        for i in (1, 8)
    }
    assert over[1] > over[8]
