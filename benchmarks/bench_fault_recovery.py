"""Ablation — fault recovery cost vs. full restart (paper §VI).

The anytime warm recovery (crash a worker, re-ship its sub-graph, rerun
its local IA, let RC re-converge) is compared with the only alternative a
static system has: restarting the whole computation.  Recovery should cost
a small fraction of the restart.
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.graph import barabasi_albert
from repro.runtime.faults import crash_and_recover

COLUMNS = ["variant", "modeled_minutes", "rc_steps"]


def run_all(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)

    # cost of the initial full analysis (the restart price)
    engine = AnytimeAnywhereCloseness(
        graph,
        AnytimeConfig(nprocs=scale.nprocs, seed=scale.seed,
                      collect_snapshots=False),
    )
    engine.setup()
    full = engine.run()
    full_cost = engine.modeled_seconds

    # crash one worker and recover in place
    before = engine.modeled_seconds
    crash_and_recover(engine.cluster, scale.nprocs // 2)
    recovery = engine.run()
    recovery_cost = engine.modeled_seconds - before

    return [
        {
            "variant": "full_restart",
            "modeled_minutes": full_cost / 60.0,
            "rc_steps": full.rc_steps,
        },
        {
            "variant": "anytime_recovery",
            "modeled_minutes": recovery_cost / 60.0,
            "rc_steps": recovery.rc_steps,
        },
    ]


def test_fault_recovery_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("ablation_fault_recovery", rows, COLUMNS)
    restart, recovery = rows
    # recovering one of P workers costs well under a full restart
    assert recovery["modeled_minutes"] < 0.8 * restart["modeled_minutes"]
