"""Ablation — anytime solution quality per RC step.

The anytime guarantee: interrupting after any RC step yields valid
upper-bound estimates whose error decreases monotonically.  This bench
regenerates the quality-vs-step curve for a run absorbing a mid-analysis
vertex addition, reporting closeness MAE and rank correlation against the
exact final answer.
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import community_workload
from repro.centrality import (
    closeness_error,
    exact_closeness,
    rank_correlation,
)

COLUMNS = ["step", "resolved_frac", "closeness_mae", "rank_corr"]


def run(scale):
    wl = community_workload(
        scale.n_base,
        max(scale.batch_sizes[len(scale.batch_sizes) // 2], 4),
        seed=scale.seed,
        inject_step=2,
    )
    engine = AnytimeAnywhereCloseness(
        wl.base,
        AnytimeConfig(nprocs=scale.nprocs, seed=scale.seed,
                      collect_snapshots=True),
    )
    engine.setup()
    result = engine.run(changes=wl.stream, strategy="cutedge")
    exact = exact_closeness(wl.final)
    rows = []
    for snap in result.snapshots:
        err = closeness_error(snap.closeness, exact)
        rows.append(
            {
                "step": snap.step,
                "resolved_frac": snap.resolved_fraction,
                "closeness_mae": err["mae"],
                "rank_corr": rank_correlation(snap.closeness, exact),
            }
        )
    return rows


def test_anytime_quality(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run(scale), rounds=1, iterations=1)
    emit("ablation_anytime_quality", rows, COLUMNS)
    # final answer is exact
    assert rows[-1]["closeness_mae"] == 0.0
    assert rows[-1]["rank_corr"] == 1.0
    # error after the batch lands (vertex count stable) is non-increasing
    tail = [r["closeness_mae"] for r in rows if r["step"] >= 3]
    assert all(b <= a + 1e-12 for a, b in zip(tail, tail[1:]))
