"""Extension — landmark approximation quality/cost (paper ref [22]).

Okamoto et al.'s approximate-then-verify ranking is the practical answer
to "who are the top actors *right now*" between exact anytime refreshes.
This bench sweeps the landmark budget and reports rank quality against the
exact answer plus the wall-time ratio vs. full APSP.
"""

import time

from repro.centrality import (
    exact_closeness,
    landmark_closeness,
    rank_correlation,
    rank_vertices,
    top_k_closeness,
    top_k_overlap,
)
from repro.graph import barabasi_albert

COLUMNS = [
    "landmarks",
    "rank_corr",
    "top10_overlap",
    "topk_exact_match",
    "speedup_vs_apsp",
]

BUDGETS = (4, 8, 16, 32, 64)


def run_all(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    t0 = time.perf_counter()
    exact = exact_closeness(graph)
    exact_seconds = time.perf_counter() - t0
    exact_top10 = rank_vertices(exact)[:10]
    rows = []
    for budget in BUDGETS:
        t0 = time.perf_counter()
        est = landmark_closeness(graph, budget, seed=scale.seed)
        est_seconds = max(time.perf_counter() - t0, 1e-9)
        ranked = top_k_closeness(
            graph, 10, n_landmarks=budget, seed=scale.seed
        )
        rows.append(
            {
                "landmarks": budget,
                "rank_corr": rank_correlation(est, exact),
                "top10_overlap": top_k_overlap(est, exact, 10),
                "topk_exact_match": [v for v, _c in ranked] == exact_top10,
                "speedup_vs_apsp": exact_seconds / est_seconds,
            }
        )
    return rows


def test_landmark_quality(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("extension_landmarks", rows, COLUMNS)
    # quality grows with the landmark budget and ends high
    corrs = [r["rank_corr"] for r in rows]
    assert corrs[-1] > 0.85
    assert corrs[-1] >= corrs[0]
    # the hybrid top-k is exact once the budget is moderate
    assert rows[-1]["topk_exact_match"]