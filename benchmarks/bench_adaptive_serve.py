"""Adaptive serving: SignalDrivenPolicy vs every fixed strategy.

The streaming claim behind ``strategy="auto"``: a policy that picks the
dynamic strategy per batch from live signals serves a churn feed at
least as fast (modeled time) as the best *fixed* strategy chosen in
hindsight — across churn shapes with different structure.  Each
candidate drives the identical serve loop (same trace, same admission
policy, same pacing); only the strategy differs, so modeled-time deltas
are attributable to placement decisions alone.

Gate (per churn shape):

- ``auto`` total modeled seconds <= best fixed strategy * (1 + TOL)
- the auto run repeats bitwise-identically: same closeness bits, same
  per-tick records, same policy-decision lines

Scale note: the gate is evaluated at 8 workers.  With very few workers
(<= 4) a full Repartition-S reshuffle is cheap enough to win outright
on every shape, and the signal ladder — which keys repartition on
ownership skew, not worker count — will not match it; the serve-scale
regime (8+) is where adaptive selection is the right default.

Usage:
    PYTHONPATH=src python benchmarks/bench_adaptive_serve.py --smoke
    PYTHONPATH=src python benchmarks/bench_adaptive_serve.py  # full

Writes benchmarks/results/BENCH_adaptive_serve.json and exits non-zero
on gate failure.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import AnytimeAnywhereCloseness, AnytimeConfig  # noqa: E402
from repro.serve import (  # noqa: E402
    HybridAdmission,
    TRACE_SHAPES,
    UpdateService,
    synthesize_churn,
)

RESULTS = Path(__file__).parent / "results" / "BENCH_adaptive_serve.json"

#: auto must land within 1% of the best fixed strategy per shape
TOL = 0.01
FIXED = ("roundrobin", "cutedge", "repartition")
SEED = 0


def closeness_bits(closeness: Dict[int, float]) -> List[Tuple[int, bytes]]:
    return [
        (v, struct.pack("<d", closeness[v])) for v in sorted(closeness)
    ]


def serve_once(
    shape: str, strategy: str, *, n_base: int, ticks: int, nprocs: int
) -> Dict[str, Any]:
    """Drive one candidate through the canonical serve loop."""
    trace = synthesize_churn(shape, n_base=n_base, ticks=ticks, seed=SEED)
    engine = AnytimeAnywhereCloseness(
        trace.base,
        AnytimeConfig(nprocs=nprocs, seed=SEED, collect_snapshots=False),
    )
    t0 = time.perf_counter()
    engine.setup()
    service = UpdateService(
        engine,
        admission=HybridAdmission(max_events=6, max_delay_ticks=3),
        strategy=strategy,
    )
    try:
        for tick in range(trace.ticks):
            events = trace.events_at(tick)
            if events:
                service.feed(events)
            service.step()
        result = service.drain()
    finally:
        engine.close()
    wall = time.perf_counter() - t0
    decisions = service.policy_decisions
    reasons: Dict[str, int] = {}
    for d in decisions:
        reasons[d.reason] = reasons.get(d.reason, 0) + 1
    return {
        "strategy": strategy,
        "modeled_seconds": result.modeled_seconds,
        "rc_steps": result.rc_steps,
        "converged": result.converged,
        "batches": service.batches_formed,
        "events_admitted": service.events_admitted,
        "strategy_counts": dict(sorted(service._strategy_counts.items())),
        "decision_reasons": dict(sorted(reasons.items())),
        "harness_wall_seconds": wall,
        # not serialized: used for the determinism comparison only
        "_bits": closeness_bits(result.closeness),
        "_tick_lines": tuple(t.line() for t in service.ticks),
        "_decision_lines": tuple(d.line() for d in decisions),
    }


def run_scenario(shape: str, smoke: bool) -> Dict[str, Any]:
    n_base = 100 if smoke else 120
    ticks = 16 if smoke else 24
    nprocs = 8

    runs = {
        name: serve_once(
            shape, name, n_base=n_base, ticks=ticks, nprocs=nprocs
        )
        for name in FIXED + ("auto",)
    }
    repeat = serve_once(
        shape, "auto", n_base=n_base, ticks=ticks, nprocs=nprocs
    )
    auto = runs["auto"]
    deterministic = (
        auto["_bits"] == repeat["_bits"]
        and auto["_tick_lines"] == repeat["_tick_lines"]
        and auto["_decision_lines"] == repeat["_decision_lines"]
    )

    best_fixed = min(FIXED, key=lambda name: runs[name]["modeled_seconds"])
    best_modeled = runs[best_fixed]["modeled_seconds"]
    ratio = auto["modeled_seconds"] / best_modeled if best_modeled else 1.0
    return {
        "name": shape,
        "n_base": n_base,
        "ticks": ticks,
        "nprocs": nprocs,
        "runs": {
            name: {k: v for k, v in run.items() if not k.startswith("_")}
            for name, run in runs.items()
        },
        "best_fixed": best_fixed,
        "best_fixed_modeled_seconds": best_modeled,
        "auto_modeled_seconds": auto["modeled_seconds"],
        "auto_vs_best_fixed": ratio,
        "auto_within_tolerance": ratio <= 1.0 + TOL,
        "auto_deterministic": deterministic,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-friendly scale"
    )
    parser.add_argument(
        "--out", type=str, default=str(RESULTS), help="output JSON path"
    )
    args = parser.parse_args(argv)

    scenarios = [
        run_scenario(shape, args.smoke) for shape in sorted(TRACE_SHAPES)
    ]

    failures: List[str] = []
    for sc in scenarios:
        if not sc["auto_within_tolerance"]:
            failures.append(
                f"{sc['name']}: auto modeled"
                f" {sc['auto_modeled_seconds']:.6f}s exceeds best fixed"
                f" '{sc['best_fixed']}'"
                f" ({sc['best_fixed_modeled_seconds']:.6f}s)"
                f" by more than {TOL:.0%}"
                f" (x{sc['auto_vs_best_fixed']:.4f})"
            )
        if not sc["auto_deterministic"]:
            failures.append(
                f"{sc['name']}: repeated auto runs diverged (closeness,"
                " tick records, or policy decisions)"
            )
        for name, run in sc["runs"].items():
            if not run["converged"]:
                failures.append(f"{sc['name']}/{name}: did not converge")

    report = {
        "bench": "adaptive_serve",
        "smoke": args.smoke,
        "seed": SEED,
        "tolerance": TOL,
        "fixed_candidates": list(FIXED),
        "scenarios": scenarios,
        "failures": failures,
        "pass": not failures,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for sc in scenarios:
        auto = sc["runs"]["auto"]
        print(
            f"{sc['name']:>20}: auto {sc['auto_modeled_seconds']:.5f}s"
            f" vs best fixed '{sc['best_fixed']}'"
            f" {sc['best_fixed_modeled_seconds']:.5f}s"
            f" (x{sc['auto_vs_best_fixed']:.4f}),"
            f" picks {auto['strategy_counts']},"
            f" deterministic={sc['auto_deterministic']}"
        )
    print(f"report written to {out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
