"""Ablation — targeted rebalancing vs. unmanaged skew (paper §VI).

A skew-inducing change stream (neighbor-majority placement piles community
arrivals onto few workers) is run with and without the rebalancer.  The
rebalanced run must keep per-worker vertex imbalance bounded; the table
shows the imbalance / modeled-time tradeoff.
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import incremental_stream
from repro.core.strategies import (
    NeighborMajorityPS,
    RebalancedStrategy,
    VertexAdditionStrategy,
)

COLUMNS = [
    "variant",
    "vertex_imbalance",
    "cut_imbalance",
    "moves",
    "modeled_minutes",
]


def run_all(scale):
    wl = incremental_stream(
        scale.n_base,
        max(scale.per_step_sizes),
        scale.incr_steps,
        n_communities_per_step=1,
        seed=scale.seed,
    )
    rows = []
    for label, make in (
        ("neighbormajority", lambda: VertexAdditionStrategy(NeighborMajorityPS())),
        (
            "neighbormajority+rebalance",
            lambda: RebalancedStrategy(
                VertexAdditionStrategy(NeighborMajorityPS()), threshold=0.10
            ),
        ),
    ):
        strategy = make()
        engine = AnytimeAnywhereCloseness(
            wl.base,
            AnytimeConfig(
                nprocs=scale.nprocs, seed=scale.seed, collect_snapshots=False
            ),
        )
        engine.setup()
        result = engine.run(changes=wl.stream, strategy=strategy)
        rows.append(
            {
                "variant": label,
                "vertex_imbalance": result.load.vertex_imbalance,
                "cut_imbalance": result.load.cut_imbalance,
                "moves": getattr(strategy, "total_moves", 0),
                "modeled_minutes": result.modeled_minutes,
            }
        )
    return rows


def test_rebalance_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("ablation_rebalance", rows, COLUMNS)
    plain, balanced = rows
    assert balanced["vertex_imbalance"] <= plain["vertex_imbalance"] + 1e-9
    assert balanced["vertex_imbalance"] <= 0.30
    assert balanced["moves"] > 0
