"""Extension — heterogeneous clusters ("the cloud", paper §VI).

Half the workers run at 2x speed.  Three configurations of the same
analysis compare how much of the heterogeneity the system exploits:

* ``uniform``       — speed-oblivious DD (equal blocks): the slow workers
  gate every superstep,
* ``speed_matched`` — DD with speed-proportional target weights: blocks
  sized so all workers finish together,
* ``homogeneous``   — reference cluster with all workers at 1x.
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.graph import barabasi_albert
from repro.partition import MultilevelPartitioner

COLUMNS = ["variant", "modeled_seconds", "block_sizes"]


def run_all(scale):
    graph = barabasi_albert(scale.n_base, scale.m, seed=scale.seed)
    half = scale.nprocs // 2
    speeds = [2.0] * half + [1.0] * (scale.nprocs - half)

    def pipeline(worker_speeds, partitioner):
        engine = AnytimeAnywhereCloseness(
            graph,
            AnytimeConfig(
                nprocs=scale.nprocs,
                worker_speeds=worker_speeds,
                partitioner=partitioner,
                collect_snapshots=False,
                seed=scale.seed,
            ),
        )
        engine.setup()
        result = engine.run()
        sizes = engine.cluster.partition.block_sizes()
        return result.modeled_seconds, sizes

    rows = []
    for label, ws, part in (
        ("homogeneous", None, MultilevelPartitioner(seed=scale.seed)),
        ("uniform", speeds, MultilevelPartitioner(seed=scale.seed)),
        (
            "speed_matched",
            speeds,
            MultilevelPartitioner(seed=scale.seed, target_weights=speeds),
        ),
    ):
        modeled, sizes = pipeline(ws, part)
        rows.append(
            {
                "variant": label,
                "modeled_seconds": modeled,
                "block_sizes": str(sizes),
            }
        )
    return rows


def test_heterogeneous_ablation(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("extension_heterogeneous", rows, COLUMNS)
    by = {r["variant"]: r["modeled_seconds"] for r in rows}
    # faster hardware helps even unexploited...
    assert by["uniform"] <= by["homogeneous"] + 1e-9
    # ...but sizing blocks to speeds is what actually captures it
    assert by["speed_matched"] < by["uniform"]
