"""Robustness — placement quality across many seeds (statistical check).

The Fig. 7 ordering (CutEdge-PS creates fewer new cut edges than
RoundRobin-PS) should not depend on a lucky seed.  Placement quality can
be measured *without* running the RC phase — place the batch, extend the
partition, count cut edges among the new edges — so this bench sweeps
10 seeds x several batch sizes cheaply and checks the ordering holds in
aggregate and in (nearly) every instance.
"""

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench import community_workload
from repro.core.strategies import CutEdgePS, LDGPS, NeighborMajorityPS, RoundRobinPS

COLUMNS = ["strategy", "mean_new_cut_edges", "wins_vs_roundrobin", "runs"]

SEEDS = range(10)
SIZES = (24, 48, 96)


def count_new_cut_edges(batch, cluster, placement):
    owner = dict(cluster.partition.assignment)
    owner.update(placement)
    cut = 0
    for va in batch.vertex_additions:
        for t, _w in va.edges:
            if owner[va.vertex] != owner[t]:
                cut += 1
    return cut


def run_all(scale):
    strategies = {
        "roundrobin": RoundRobinPS,
        "cutedge": CutEdgePS,
        "ldg": LDGPS,
        "neighbormajority": NeighborMajorityPS,
    }
    totals = {name: [] for name in strategies}
    for seed in SEEDS:
        for size in SIZES:
            wl = community_workload(
                scale.n_base, size, seed=seed, inject_step=0
            )
            engine = AnytimeAnywhereCloseness(
                wl.base,
                AnytimeConfig(
                    nprocs=scale.nprocs, seed=seed, collect_snapshots=False
                ),
            )
            engine.setup()
            batch = wl.single_batch()
            for name, cls in strategies.items():
                placement = cls().assign(batch, engine.cluster)
                totals[name].append(
                    count_new_cut_edges(batch, engine.cluster, placement)
                )
    rows = []
    rr = totals["roundrobin"]
    for name, vals in totals.items():
        wins = sum(1 for a, b in zip(vals, rr) if a <= b)
        rows.append(
            {
                "strategy": name,
                "mean_new_cut_edges": sum(vals) / len(vals),
                "wins_vs_roundrobin": wins,
                "runs": len(vals),
            }
        )
    return rows


def test_placement_robustness(benchmark, scale, emit):
    rows = benchmark.pedantic(lambda: run_all(scale), rounds=1, iterations=1)
    emit("robustness_placement", rows, COLUMNS)
    by = {r["strategy"]: r for r in rows}
    n_runs = by["roundrobin"]["runs"]
    # CutEdge-PS beats RoundRobin-PS in essentially every instance
    assert by["cutedge"]["wins_vs_roundrobin"] >= 0.9 * n_runs
    assert (
        by["cutedge"]["mean_new_cut_edges"]
        < 0.8 * by["roundrobin"]["mean_new_cut_edges"]
    )
    # the locality-aware extensions also dominate round-robin on average
    assert (
        by["ldg"]["mean_new_cut_edges"]
        < by["roundrobin"]["mean_new_cut_edges"]
    )