"""Shared fixtures for the figure benchmarks.

Scale control: set ``REPRO_BENCH_SCALE=small`` for a quick smoke pass, or
``REPRO_BENCH_SCALE=paper`` to run the original 50,000-vertex /
16-processor parameters (hours).  Default is the laptop-scale reduction
documented in EXPERIMENTS.md.

Each figure benchmark prints the regenerated data series (the same rows
the paper plots) — run with ``-s`` to see them inline; they are also
written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import ScenarioScale, format_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ScenarioScale:
    choice = os.environ.get("REPRO_BENCH_SCALE", "default")
    if choice == "small":
        return ScenarioScale.small()
    if choice == "paper":
        return ScenarioScale.paper()
    return ScenarioScale()


@pytest.fixture(scope="session")
def emit():
    """Print a figure's rows and persist them under benchmarks/results/.

    Besides the human-readable table, every figure writes its rows
    through the normalized regression-ledger schema as
    ``<name>.ledger.jsonl`` — the current side ``tools/bench_diff.py``
    judges against the committed ``benchmarks/history/`` baseline.
    """

    from repro.obs.history import append_records, records_from_rows

    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, rows, columns=None) -> None:
        table = format_table(rows, columns)
        text = f"== {name} ==\n{table}\n"
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        ledger = RESULTS_DIR / f"{name}.ledger.jsonl"
        ledger.unlink(missing_ok=True)  # one run = one fresh ledger
        append_records(ledger, records_from_rows(name, rows))

    return _emit
