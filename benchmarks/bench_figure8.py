"""Figure 8 — incremental vertex additions over 10 RC steps.

Paper: 51/187/383/561 vertices per step for 10 steps (on 50,000 vertices);
the baseline restarts for every update and is dramatically slower;
RoundRobin-PS / CutEdge-PS win at low change rates, Repartition-S wins at
high rates.
"""

from repro.bench import figure8

COLUMNS = [
    "per_step",
    "cumulative",
    "strategy",
    "modeled_minutes",
    "rc_steps",
    "wall_seconds",
]


def test_figure8(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: figure8(scale), rounds=1, iterations=1
    )
    emit("figure8", rows, COLUMNS)

    def minutes(strategy, per_step):
        return next(
            r["modeled_minutes"]
            for r in rows
            if r["strategy"] == strategy and r["per_step"] == per_step
        )

    lo, hi = min(scale.per_step_sizes), max(scale.per_step_sizes)
    # baseline restarts dominate everything at every rate
    for rate in scale.per_step_sizes:
        assert minutes("baseline", rate) > minutes("roundrobin", rate)
        assert minutes("baseline", rate) > minutes("repartition", rate)
    # low rates: continuous anywhere addition beats repeated repartitioning
    assert minutes("roundrobin", lo) < minutes("repartition", lo)
    # high rates: Repartition-S takes over
    assert minutes("repartition", hi) < minutes("roundrobin", hi)
