"""Serial vs process backend: phase wall-clock and speedup by nprocs.

Runs the same scenarios under ``backend="serial"`` and
``backend="process"`` at nprocs ∈ {2, 4, 8} and records, per phase,

* the initial-approximation (IA) wall time — the per-rank Dijkstra
  kernels the process backend fans out to the pool, measured on the
  full-scale static graph via ``setup()`` alone (RC to convergence on a
  20k-vertex graph is a full |V_local| x |V| min-plus fold — hours of
  single-core NumPy — so the static scenario stops after IA),
* the recompute (RC) wall time on a dynamic vertex-addition stream at a
  moderate scale — relax + blocked min-plus kernels per superstep,
* the speedup of process over serial for each phase,

and verifies closeness stays **bitwise identical** between backends.

The ``>= 2x`` IA speedup gate at nprocs=4 only makes sense when the
machine actually has the cores: the report records ``cpu_count`` and the
gate is enforced only when ``cpu_count >= 4`` at full scale (a 20k-vertex
scale-free graph); otherwise the speedups are informational — on a
single-core container the process backend measures pure orchestration
overhead, not parallelism.

Writes ``benchmarks/results/BENCH_backend_scaling.json`` and exits
non-zero if any enforced criterion fails, so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import struct
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import AnytimeAnywhereCloseness, AnytimeConfig
from repro.bench.workloads import incremental_stream
from repro.graph import barabasi_albert

RESULTS = Path(__file__).parent / "results" / "BENCH_backend_scaling.json"

#: hard floor on IA speedup (process over serial) at the gated nprocs
REQUIRED_IA_SPEEDUP = 2.0

#: the nprocs value the speedup gate applies to
GATED_NPROCS = 4

#: full-scale static graph (the acceptance scale); smoke shrinks this
FULL_STATIC_N = 20_000
SMOKE_STATIC_N = 400

#: dynamic (RC) scenario scale — full repropagation after a vertex
#: addition folds the whole local APSP, so this stays moderate even at
#: full scale
FULL_DYNAMIC_N = 1_000
SMOKE_DYNAMIC_N = 200


def closeness_bits(closeness: Dict[int, float]) -> List[Tuple[int, bytes]]:
    return [(v, struct.pack("<d", closeness[v])) for v in sorted(closeness)]


def phase_walls(engine: AnytimeAnywhereCloseness) -> Dict[str, float]:
    """Wall seconds by tracer phase (IA vs RC vs everything else)."""
    walls = {"ia": 0.0, "rc": 0.0, "other": 0.0}
    for rec in engine.cluster.tracer.to_json()["records"]:
        if rec["name"] == "initial_approximation":
            walls["ia"] += rec["wall_seconds"]
        elif rec["name"] == "rc_step":
            walls["rc"] += rec["wall_seconds"]
        else:
            walls["other"] += rec["wall_seconds"]
    return walls


def run_case(
    backend: str,
    nprocs: int,
    graph: Any,
    changes: Any,
    strategy: Optional[str],
    ia_only: bool,
) -> Dict[str, Any]:
    config = AnytimeConfig(
        nprocs=nprocs, seed=11, collect_snapshots=False, backend=backend
    )
    engine = AnytimeAnywhereCloseness(graph.copy(), config)
    t0 = time.perf_counter()
    engine.setup()
    if ia_only:
        # anytime read straight after IA: well-defined, and enough for
        # the cross-backend bitwise check without the RC convergence cost
        closeness = engine.current_closeness()
        modeled: Optional[float] = None
    else:
        kwargs: Dict[str, Any] = {}
        if changes is not None:
            kwargs["changes"] = changes
            kwargs["strategy"] = strategy
        result = engine.run(**kwargs)
        closeness = result.closeness
        modeled = result.modeled_seconds
    wall = time.perf_counter() - t0
    walls = phase_walls(engine)
    engine.cluster.close()
    return {
        "backend": backend,
        "nprocs": nprocs,
        "ia_wall_seconds": walls["ia"],
        "rc_wall_seconds": walls["rc"],
        "total_wall_seconds": wall,
        "modeled_seconds": modeled,
        "bits": closeness_bits(closeness),
    }


def run_scenario(
    name: str, nprocs_list: List[int], smoke: bool
) -> Dict[str, Any]:
    ia_only = False
    if name == "static":
        n = SMOKE_STATIC_N if smoke else FULL_STATIC_N
        graph = barabasi_albert(n, 3, seed=11)
        changes = None
        strategy = None
        ia_only = not smoke
    elif name == "dynamic":
        n = SMOKE_DYNAMIC_N if smoke else FULL_DYNAMIC_N
        per_step = 8 if smoke else 20
        steps = 4 if smoke else 8
        workload = incremental_stream(n, per_step, steps, seed=11)
        graph = workload.base
        changes = workload.stream
        strategy = "cutedge"
    else:
        raise ValueError(f"unknown scenario {name!r}")

    points: List[Dict[str, Any]] = []
    for nprocs in nprocs_list:
        serial = run_case(
            "serial", nprocs, graph, changes, strategy, ia_only
        )
        process = run_case(
            "process", nprocs, graph, changes, strategy, ia_only
        )
        identical = serial.pop("bits") == process.pop("bits")
        points.append(
            {
                "nprocs": nprocs,
                "serial": serial,
                "process": process,
                "bitwise_identical": identical,
                "ia_speedup": (
                    serial["ia_wall_seconds"]
                    / max(process["ia_wall_seconds"], 1e-9)
                ),
                "rc_speedup": (
                    serial["rc_wall_seconds"]
                    / max(process["rc_wall_seconds"], 1e-9)
                ),
            }
        )
    return {
        "name": name,
        "n_vertices": n,
        "ia_only": ia_only,
        "points": points,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-friendly scale"
    )
    parser.add_argument(
        "--out", type=str, default=str(RESULTS), help="output JSON path"
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    nprocs_list = [2, 4] if args.smoke else [2, 4, 8]
    scenarios = [
        run_scenario(s, nprocs_list, args.smoke)
        for s in ("static", "dynamic")
    ]

    # the speedup floor is only meaningful with the cores to back it and
    # at the acceptance scale; otherwise the numbers are informational
    gate_active = cpu_count >= GATED_NPROCS and not args.smoke

    failures: List[str] = []
    for sc in scenarios:
        for pt in sc["points"]:
            if not pt["bitwise_identical"]:
                failures.append(
                    f"{sc['name']} nprocs={pt['nprocs']}: closeness"
                    " differs between serial and process"
                )
    if gate_active:
        static = next(s for s in scenarios if s["name"] == "static")
        gated = next(
            (p for p in static["points"] if p["nprocs"] == GATED_NPROCS),
            None,
        )
        if gated is None or gated["ia_speedup"] < REQUIRED_IA_SPEEDUP:
            got = "n/a" if gated is None else f"{gated['ia_speedup']:.2f}x"
            failures.append(
                f"static: IA speedup at nprocs={GATED_NPROCS} is {got},"
                f" below the {REQUIRED_IA_SPEEDUP:.0f}x floor"
            )

    report = {
        "bench": "backend_scaling",
        "smoke": args.smoke,
        "cpu_count": cpu_count,
        "gate_active": gate_active,
        "required_ia_speedup": REQUIRED_IA_SPEEDUP,
        "gated_nprocs": GATED_NPROCS,
        "scenarios": scenarios,
        "failures": failures,
        "pass": not failures,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for sc in scenarios:
        for pt in sc["points"]:
            print(
                f"{sc['name']:>8} nprocs={pt['nprocs']}:"
                f" IA {pt['serial']['ia_wall_seconds']:.3f}s ->"
                f" {pt['process']['ia_wall_seconds']:.3f}s"
                f" (x{pt['ia_speedup']:.2f}),"
                f" RC {pt['serial']['rc_wall_seconds']:.3f}s ->"
                f" {pt['process']['rc_wall_seconds']:.3f}s"
                f" (x{pt['rc_speedup']:.2f}),"
                f" bitwise_identical={pt['bitwise_identical']}"
            )
    print(
        f"cpu_count={cpu_count}, gate_active={gate_active};"
        f" report written to {out}"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("all enforced criteria met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
