"""Figure 5 — strategy comparison for vertex additions at RC0.

Paper: batches of 500-6000 vertices (on 50,000) injected at RC0;
RoundRobin-PS and CutEdge-PS win for small batches, Repartition-S wins for
large batches (the crossover is the paper's headline tradeoff).
"""

from repro.bench import figure5

COLUMNS = [
    "batch_size",
    "strategy",
    "modeled_minutes",
    "rc_steps",
    "new_cut_edges",
    "wall_seconds",
]


def test_figure5(benchmark, scale, emit):
    rows = benchmark.pedantic(
        lambda: figure5(scale), rounds=1, iterations=1
    )
    emit("figure5", rows, COLUMNS)

    def minutes(strategy, size):
        return next(
            r["modeled_minutes"]
            for r in rows
            if r["strategy"] == strategy and r["batch_size"] == size
        )

    smallest, largest = min(scale.batch_sizes), max(scale.batch_sizes)
    # small batches: anywhere addition is no worse than repartitioning
    assert minutes("roundrobin", smallest) <= 1.25 * minutes(
        "repartition", smallest
    )
    # large batches: Repartition-S wins (the crossover exists)
    assert minutes("repartition", largest) < minutes("roundrobin", largest)
    assert minutes("repartition", largest) < minutes("cutedge", largest)
